// Protocol state machines for one migration session (DESIGN.md §12).
//
// The transactional transfer protocol used to live implicitly in the
// coordinator's control flow: which frames are legal when was encoded in
// the order of recv calls, and a peer that broke the order surfaced as
// whatever exception the nearest decoder happened to throw. These two
// classes make the protocol explicit: each endpoint owns a state machine
//
//   Idle → Hello → Streaming ⇄ Resuming
//                      ↓
//                  Prepared → Committed
//        (any live state) → Aborted
//   Streaming/Prepared/Resuming → Redirecting → Hello   (source only:
//        destination failover re-targets the stream to a standby)
//
// with ONE wire entry point, on_frame(frame), that validates the frame
// against the current state, applies the transition, and returns the new
// state. The machines are pure of transport — they never touch a channel
// or a port; the endpoint drivers (dest_host.cpp, source_txn.cpp) feed
// them every frame in consumption order and ask them what is legal.
//
// Error taxonomy, asserted by the table-driven unit suite:
//   - an illegal (state, frame) pair poisons the session into Aborted and
//     throws hpm::ProtocolError — a hostile or buggy peer;
//   - a protocol-legal failure frame (Nack, Error) or a semantic mismatch
//     (wrong txn id, wrong digest, version skew) also aborts the session
//     but throws hpm::MigrationError — the protocol worked, the handoff
//     did not.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"

namespace hpm::mig {

enum class SessionState : std::uint8_t {
  Idle = 0,   ///< constructed; no frame exchanged yet
  Hello,      ///< endpoints announced and version-checked
  Streaming,  ///< chunked state transfer in flight
  Resuming,   ///< link lost mid-stream; awaiting a replacement binding
  Prepared,   ///< commit gate open: Prepare sent / vote cast
  Committed,  ///< ownership transferred to the destination (terminal)
  Aborted,    ///< handoff over without a transfer of ownership (terminal)
  /// Source only: the destination was declared dead (supervisor verdict
  /// or exhausted resume budget) and the stream is being re-targeted at
  /// a standby under the next incarnation. Appended after the terminal
  /// states so the numeric gauge values of the original states persist
  /// across the v5 bump.
  Redirecting,
};

const char* session_state_name(SessionState state) noexcept;

/// State, identity, and per-session telemetry shared by both machines.
/// Every instrument is labeled `mig.session.<id>.<role>.*` (role is
/// "source" or "destination"), so N concurrent sessions in one process
/// stay individually observable:
///   mig.session.<id>.<role>.frames      frames accepted through on_frame
///   mig.session.<id>.<role>.transitions state changes (wire- and event-driven)
///   mig.session.<id>.<role>.state       current SessionState as a numeric gauge
class SessionMachine {
 public:
  SessionMachine(const char* role, std::uint32_t session_id);

  SessionMachine(const SessionMachine&) = delete;
  SessionMachine& operator=(const SessionMachine&) = delete;

  [[nodiscard]] SessionState state() const;
  [[nodiscard]] std::uint32_t session_id() const noexcept { return id_; }
  [[nodiscard]] bool terminal() const;

  /// Human-readable cause recorded by the transition into Aborted.
  [[nodiscard]] std::string abort_reason() const;

 protected:
  ~SessionMachine() = default;

  [[nodiscard]] bool terminal_locked() const {
    return state_ == SessionState::Committed || state_ == SessionState::Aborted;
  }

  void transition_locked(SessionState next);
  /// Poison into Aborted and throw ProtocolError describing the pair.
  [[noreturn]] void illegal_locked(net::MsgType type);
  /// Poison into Aborted and throw ProtocolError for a local event fired
  /// out of order — a driver bug rather than a peer bug, but equally fatal.
  [[noreturn]] void illegal_event_locked(const char* event);
  /// Poison into Aborted and throw MigrationError(why).
  [[noreturn]] void reject_locked(std::string why);

  mutable std::mutex mu_;
  SessionState state_ = SessionState::Idle;
  std::string abort_reason_;
  const char* role_;
  std::uint32_t id_;
  obs::Counter& frames_;
  obs::Counter& transitions_;
  obs::Gauge& state_gauge_;
};

/// The source endpoint's machine: frames fed to on_frame are the ones the
/// DESTINATION sent. Local protocol actions of the source itself
/// (streaming begun, Prepare sent, Commit decided) arrive as the event
/// methods, so the machine tracks the full protocol, not just the wire's
/// inbound half.
class SourceSession : public SessionMachine {
 public:
  SourceSession(std::uint32_t session_id, std::uint64_t txn_id);

  /// Wire entry point. Legal pairs (see the transition table in
  /// session.cpp) return the post-frame state; StateAck watermarks are
  /// folded monotonically as a side effect.
  SessionState on_frame(const net::Message& frame);

  /// --- local protocol events ---------------------------------------------
  void begin_streaming();             ///< Hello → Streaming (StateBegin may follow)
  void link_lost();                   ///< Streaming/Prepared/Resuming → Resuming
  void prepare_sent();                ///< Streaming → Prepared
  void commit_decided();              ///< Prepared → Committed (durable Commit record)
  void abort_decided(std::string why);///< any live state → Aborted (no throw)

  /// Failover: the current destination is presumed dead and the stream is
  /// being re-targeted at a standby under `next_incarnation`. Legal from
  /// Idle (a primary dead before its Hello), Streaming/Prepared/Resuming,
  /// and Redirecting itself (a standby dead before ITS Hello — the next
  /// candidate is the same decision again); resets the per-destination
  /// transfer state (watermark, manifest ack) while keeping the retained
  /// stream's totals, and re-opens the machine for the standby's Hello.
  void redirect_decided(std::uint32_t next_incarnation);

  /// Collection finished: arms ResumeHello validation (a destination may
  /// not claim more chunks than the retained stream holds) and PrepareAck
  /// digest cross-checking.
  void set_stream(std::uint64_t total_chunks, std::uint64_t digest);

  /// Highest chunk watermark folded from StateAck frames.
  [[nodiscard]] std::uint32_t acked_watermark() const;

  /// next_seq of the ResumeHello that re-entered Streaming.
  [[nodiscard]] std::uint32_t resume_next_seq() const;

  /// Destination incarnation the machine currently addresses (1 for the
  /// primary; redirect_decided bumps it). Every PrepareAck must echo it.
  [[nodiscard]] std::uint32_t incarnation() const;

 private:
  std::uint64_t txn_ = 0;
  std::uint64_t total_chunks_ = 0;
  std::uint64_t digest_ = 0;
  bool stream_known_ = false;
  bool manifest_acked_ = false;  ///< dedup: the one ManifestAck arrived
  std::uint32_t acked_ = 0;
  std::uint32_t resume_next_seq_ = 0;
  std::uint32_t incarnation_ = 1;
};

/// The destination endpoint's machine: frames fed to on_frame are the
/// ones the SOURCE sent. The transaction id is learned from StateBegin
/// and enforced on every later frame that names one.
class DestSession : public SessionMachine {
 public:
  explicit DestSession(std::uint32_t session_id);

  SessionState on_frame(const net::Message& frame);

  /// --- local protocol events ---------------------------------------------
  void announce();                     ///< Idle → Hello (our Hello went out)
  void park();                         ///< Streaming → Resuming (link died)
  void resume_announced();             ///< Resuming → Streaming (ResumeHello sent)
  void commit_recovered();             ///< Prepared → Committed (in-doubt resolution)
  void abort_decided(std::string why); ///< any live state → Aborted (no throw)

  /// True when the Aborted state was an orderly no-migration Shutdown,
  /// not a failure.
  [[nodiscard]] bool orderly_shutdown() const;

  [[nodiscard]] std::uint64_t txn_id() const;
  [[nodiscard]] std::uint32_t chunks_seen() const;
  [[nodiscard]] net::StateBeginInfo begin_info() const;

  /// Incarnation learned from StateBegin (1 until then). A Prepare or
  /// Commit naming any other incarnation is refused — this destination
  /// was fenced off by a failover and may not own the process.
  [[nodiscard]] std::uint32_t incarnation() const;

 private:
  net::StateBeginInfo begin_{};
  std::uint64_t txn_ = 0;
  std::uint32_t chunks_ = 0;
  std::uint32_t manifest_total_ = 0;  ///< dedup: chunk count ManifestBegin announced
  std::uint32_t manifest_seen_ = 0;   ///< dedup: addresses folded from ManifestChunk
  bool manifest_announced_ = false;
  bool stream_complete_ = false;
  bool orderly_ = false;
};

}  // namespace hpm::mig
