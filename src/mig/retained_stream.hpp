// The retained canonical stream behind resume and failover.
//
// A pipelined transaction must be able to retransmit any chunk of the
// collected stream until the destination's Committed is confirmed: resume
// replays the tail past the acked watermark, and destination failover
// replays [0, end) at a standby. Before failover the retained copy lived
// only in source memory — fine for one resume, fatal under memory
// pressure and wasteful when a big process might wait minutes for a
// standby to dial. RetainedStream keeps the bytes in memory by default
// and can spill them to an fsync'd file (RunOptions::retain_dir), after
// which reads are served by pread and the heap copy is freed. Either way
// the chunk math is identical: the stream is an immutable byte array
// from the moment collection finishes.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/hexdump.hpp"

namespace hpm::mig {

/// Immutable collected stream, resident in memory or spilled to disk.
///
/// Thread-safety: none needed — set once by the collection thread, read
/// by the sender loop after a happens-before (the coordinator joins the
/// collection before any retransmit).
class RetainedStream {
 public:
  RetainedStream() = default;
  ~RetainedStream();

  RetainedStream(const RetainedStream&) = delete;
  RetainedStream& operator=(const RetainedStream&) = delete;

  /// Adopt the collected stream (memory mode).
  void set(Bytes stream);

  /// Write the retained bytes to `path` (fsync'd), then free the heap
  /// copy: reads switch to pread against the spill file. Throws
  /// hpm::MigrationError if the file cannot be written — a failover
  /// promised a durable replay source and must not pretend. No-op when
  /// already spilled or empty.
  void spill(const std::string& path);

  /// Copy `[offset, offset+out.size())` of the stream into `out`.
  /// Throws hpm::MigrationError on out-of-range reads or spill-file IO
  /// errors (a truncated spill must fail loudly, not replay garbage).
  void read(std::uint64_t offset, std::span<std::uint8_t> out) const;

  /// The whole stream as a fresh in-memory copy — the serial-fallback and
  /// local-completion paths restore from a contiguous buffer.
  [[nodiscard]] Bytes materialize() const;

  /// Unlink the spill file (if any) and drop the memory copy. Called once
  /// the transaction reached a terminal verdict; safe to call twice.
  void release();

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool spilled() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& spill_path() const noexcept { return path_; }

 private:
  Bytes memory_;
  std::string path_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace hpm::mig
