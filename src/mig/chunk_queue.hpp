// Bounded handoff between the collecting thread (producer) and the
// sender thread of the pipelined transfer.
//
// The dedup'd path (RunOptions::chunk_cache_dir, DESIGN.md §15) does not
// use this queue: manifest negotiation needs the full stream's addresses
// before anything is sent, so the source collects to completion and
// transmits misses from the finished stream — concurrency buys nothing
// when the first frame already depends on the last chunk.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "mig/mig_metrics.hpp"
#include "net/message.hpp"

namespace hpm::mig {

/// Back-pressure by design: push() blocks while the queue is full, so a
/// slow link throttles collection instead of buffering the heap twice.
/// poison() (sender died, or teardown) turns pushes into drops so
/// collection can finish and unwind normally.
class ChunkQueue {
 public:
  explicit ChunkQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(Bytes chunk) {
    std::unique_lock lk(mu_);
    can_push_.wait(lk, [&] { return q_.size() < capacity_ || poisoned_; });
    if (poisoned_) return;
    q_.push_back(std::move(chunk));
    ++pushed_;
    PipelineMetrics::get().queue_depth.set(static_cast<std::int64_t>(q_.size()));
    can_pop_.notify_one();
  }

  /// False once the queue is closed and drained.
  bool pop(Bytes& out) {
    std::unique_lock lk(mu_);
    can_pop_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    PipelineMetrics::get().queue_depth.set(static_cast<std::int64_t>(q_.size()));
    can_push_.notify_one();
    return true;
  }

  /// Close the producer side; `end` (if set) tells the sender to finish
  /// with a StateEnd frame after draining. First close wins.
  void close(std::optional<net::StateEndInfo> end) {
    std::lock_guard lk(mu_);
    if (closed_) return;
    end_ = end;
    closed_ = true;
    can_pop_.notify_all();
  }

  void poison() {
    std::lock_guard lk(mu_);
    poisoned_ = true;
    can_push_.notify_all();
  }

  [[nodiscard]] std::uint32_t pushed() const {
    std::lock_guard lk(mu_);
    return pushed_;
  }

  [[nodiscard]] std::optional<net::StateEndInfo> end_info() const {
    std::lock_guard lk(mu_);
    return end_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Bytes> q_;
  std::size_t capacity_;
  std::uint32_t pushed_ = 0;
  bool closed_ = false;
  bool poisoned_ = false;
  std::optional<net::StateEndInfo> end_;
};

/// Queue bound: deep enough to ride out send jitter, small enough that a
/// stalled link stops collection after ~capacity chunks of lookahead.
inline constexpr std::size_t kChunkQueueCapacity = 8;

}  // namespace hpm::mig
