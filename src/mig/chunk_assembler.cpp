#include "mig/chunk_assembler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hpm::mig {

/// Reserve ahead so the append below cannot trigger a per-chunk
/// reallocation: when the backing store is about to run out, grow it in
/// one move to the larger of double the current capacity and a 16-chunk
/// stride of the announced chunk size. Either bound keeps the total
/// number of regrowths logarithmic in the stream size.
void ChunkAssembler::reserve_for_locked(std::size_t incoming) {
  const std::size_t needed = data_.size() + incoming;
  if (needed <= data_.capacity()) return;
  const std::size_t stride = static_cast<std::size_t>(chunk_hint_) * 16;
  data_.reserve(std::max({needed, data_.capacity() * 2, data_.size() + stride}));
  ++growths_;
}

void ChunkAssembler::fail_locked(std::string reason) {
  if (!failed_) {
    failed_ = true;
    reason_ = std::move(reason);
  }
  cv_.notify_all();
}

void ChunkAssembler::append(std::uint32_t seq, std::span<const std::uint8_t> bytes) {
  std::lock_guard lk(mu_);
  if (failed_) return;  // late chunks after a failure are drained, not kept
  if (complete_) {
    fail_locked("protocol violation: StateChunk " + std::to_string(seq) +
                " arrived after StateEnd");
    throw ProtocolError(reason_);
  }
  if (seq < chunks_) {
    fail_locked("duplicate or replayed chunk: seq " + std::to_string(seq) +
                " already assembled (next expected " + std::to_string(chunks_) + ")");
    throw ProtocolError(reason_);
  }
  if (seq > chunks_) {
    fail_locked("chunk sequence gap: expected " + std::to_string(chunks_) + ", got " +
                std::to_string(seq));
    throw ProtocolError(reason_);
  }
  reserve_for_locked(bytes.size());
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  if (manifest_mode_ && chunks_ < pending_.size() && pending_have_[chunks_]) {
    // A raw resume retransmit superseded a held hit; drop the copy.
    pending_have_[chunks_] = false;
    Bytes().swap(pending_[chunks_]);
  }
  ++chunks_;
  if (manifest_mode_ && splice_enabled_) splice_pending_locked();
  cv_.notify_all();
}

void ChunkAssembler::splice_pending_locked() {
  while (chunks_ < pending_.size() && pending_have_[chunks_]) {
    Bytes body = std::move(pending_[chunks_]);
    pending_have_[chunks_] = false;
    reserve_for_locked(body.size());
    data_.insert(data_.end(), body.begin(), body.end());
    ++chunks_;
  }
}

std::vector<std::uint32_t> ChunkAssembler::begin_manifest(const std::vector<ChunkAddr>& addrs,
                                                          ChunkStore& store) {
  std::lock_guard lk(mu_);
  if (manifest_mode_ || chunks_ != 0 || complete_) {
    fail_locked("protocol violation: manifest announced mid-stream");
    throw ProtocolError(reason_);
  }
  manifest_mode_ = true;
  pending_.resize(addrs.size());
  pending_have_.assign(addrs.size(), false);
  std::vector<std::uint32_t> misses;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    // load() verifies the record CRC and recomputes the body digest, so
    // a corrupted entry becomes a miss (and is unlinked) right here —
    // the re-request happens inside the same negotiation.
    if (store.load(addrs[i], pending_[i])) {
      pending_have_[i] = true;
    } else {
      misses.push_back(static_cast<std::uint32_t>(i));
    }
  }
  splice_pending_locked();
  cv_.notify_all();
  return misses;
}

void ChunkAssembler::mark_resumed() {
  std::lock_guard lk(mu_);
  splice_enabled_ = false;
}

void ChunkAssembler::finish(const net::StateEndInfo& info) {
  std::lock_guard lk(mu_);
  if (failed_) return;
  if (complete_) {
    fail_locked("protocol violation: second StateEnd for one stream");
    throw ProtocolError(reason_);
  }
  if (info.chunk_count != chunks_) {
    fail_locked("stream ended after " + std::to_string(chunks_) + " chunks, sender reports " +
                std::to_string(info.chunk_count));
    return;
  }
  if (info.total_bytes != data_.size()) {
    fail_locked("stream ended with " + std::to_string(data_.size()) +
                " bytes, sender reports " + std::to_string(info.total_bytes));
    return;
  }
  end_ = info;
  complete_ = true;
  cv_.notify_all();
}

void ChunkAssembler::fail(std::string reason) {
  std::lock_guard lk(mu_);
  fail_locked(std::move(reason));
}

bool ChunkAssembler::fetch(Bytes& out, std::size_t min_total) {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return data_.size() >= min_total || complete_ || failed_; });
  if (failed_) throw NetError("chunked transfer failed: " + reason_);
  if (data_.size() <= out.size()) return false;  // complete and exhausted
  out.insert(out.end(), data_.begin() + static_cast<std::ptrdiff_t>(out.size()), data_.end());
  return true;
}

std::uint64_t ChunkAssembler::await_complete() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return complete_ || failed_; });
  if (failed_) throw NetError("chunked transfer failed: " + reason_);
  return data_.size();
}

std::uint32_t ChunkAssembler::chunks_received() const {
  std::lock_guard lk(mu_);
  return chunks_;
}

net::StateEndInfo ChunkAssembler::end_info() const {
  std::lock_guard lk(mu_);
  return end_;
}

std::uint64_t ChunkAssembler::alloc_growths() const {
  std::lock_guard lk(mu_);
  return growths_;
}

}  // namespace hpm::mig
