// Cancellation token shared between a session's driver and its
// supervisor. Split from supervisor.hpp so fault-injection ports
// (port.hpp) can cooperate with cancellation without an include cycle.
#pragma once

#include <atomic>
#include <mutex>
#include <string>

namespace hpm::mig {

/// One-way latch: the supervisor trips it when it declares the session
/// wedged; anything blocked on the session's behalf polls it to unwind
/// with CancelledError. Never resets.
class CancelToken {
 public:
  void cancel(std::string reason) {
    {
      std::lock_guard lk(mu_);
      if (reason_.empty()) reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::string reason() const {
    std::lock_guard lk(mu_);
    return reason_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

}  // namespace hpm::mig
