// Small helpers shared by the migration layer's endpoint drivers
// (serial_transfer, source_txn, dest_host, coordinator).
#pragma once

#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "mig/coordinator.hpp"
#include "net/faulty_channel.hpp"
#include "net/message.hpp"
#include "net/simnet.hpp"

namespace hpm::mig {

/// Deadline applied when fault injection is on but the caller set none:
/// an injected stall/truncation must never hang the run.
inline constexpr double kFaultInjectionDefaultTimeout = 5.0;

inline void remove_spool(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
}

/// Deletes the spool (and its ".done" marker) when the run ends — orderly
/// or not — so no state leaks into the next Transport::File run.
struct SpoolCleanup {
  const RunOptions& options;
  ~SpoolCleanup() {
    if (options.transport == Transport::File) remove_spool(options.spool_path);
  }
};

inline Bytes hello_payload(const std::string& arch) {
  Bytes payload;
  payload.reserve(1 + arch.size());
  payload.push_back(net::kProtocolVersion);
  payload.insert(payload.end(), arch.begin(), arch.end());
  return payload;
}

inline std::string exception_text(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Run the destination program to completion after begin_restore*(). A
/// MigrationExit here is the stop_after_restore unwind: restoration
/// completed and the metrics are recorded; skipping the tail is the point.
inline void run_destination_program(const RunOptions& options, MigContext& ctx,
                                    MigrationReport& report) {
  try {
    options.program(ctx);
  } catch (const MigrationExit&) {
  }
  report.restore_seconds = ctx.metrics().restore_seconds;
}

inline std::unique_ptr<net::ByteChannel> wrap_source_channel(
    std::unique_ptr<net::ByteChannel> ch, const RunOptions& options,
    const std::shared_ptr<net::FaultState>& fault_state,
    std::chrono::milliseconds timeout) {
  if (options.fault_plan.enabled()) {
    ch = std::make_unique<net::FaultyChannel>(std::move(ch), options.fault_plan,
                                              fault_state);
  }
  if (options.throttle) {
    ch = std::make_unique<net::ThrottledChannel>(std::move(ch), options.link);
  }
  if (timeout.count() > 0) ch->set_timeout(timeout);
  return ch;
}

inline std::unique_ptr<net::ByteChannel> wrap_dest_channel(
    std::unique_ptr<net::ByteChannel> ch, const RunOptions& options,
    const std::shared_ptr<net::FaultState>& dest_fault_state) {
  if (options.dest_fault_plan.enabled()) {
    ch = std::make_unique<net::FaultyChannel>(std::move(ch), options.dest_fault_plan,
                                              dest_fault_state);
  }
  return ch;
}

}  // namespace hpm::mig
