#include "mig/supervisor.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "mig/mig_metrics.hpp"

namespace hpm::mig {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------- TimerWheel

TimerWheel::TimerWheel(std::chrono::milliseconds tick, std::size_t slots)
    : tick_(tick.count() > 0 ? tick : std::chrono::milliseconds(1)),
      slots_(std::max<std::size_t>(slots, 1)),
      origin_(Clock::now()) {}

std::int64_t TimerWheel::tick_index(Clock::time_point t) const noexcept {
  if (t <= origin_) return 0;
  return std::chrono::duration_cast<std::chrono::milliseconds>(t - origin_).count() /
         tick_.count();
}

void TimerWheel::schedule(std::uint32_t id, Clock::time_point due) {
  cancel(id);
  // Entries landing in a tick the sweep already passed go into the very
  // next unswept bucket so they fire on the next advance() instead of
  // waiting a full wheel revolution.
  const std::int64_t idx = std::max(tick_index(due), swept_ + 1);
  slots_[static_cast<std::size_t>(idx) % slots_.size()].push_back(Pending{id, due});
  ++armed_;
}

std::vector<std::uint32_t> TimerWheel::advance(Clock::time_point now) {
  std::vector<std::uint32_t> due;
  const std::int64_t target = tick_index(now);
  while (swept_ < target) {
    ++swept_;
    auto& bucket = slots_[static_cast<std::size_t>(swept_) % slots_.size()];
    std::vector<Pending> keep;
    for (Pending& p : bucket) {
      if (p.due <= now) {
        due.push_back(p.id);
        --armed_;
      } else {
        // Hash collision from a later wheel revolution: re-file it.
        keep.push_back(p);
      }
    }
    bucket = std::move(keep);
  }
  return due;
}

void TimerWheel::cancel(std::uint32_t id) {
  for (auto& bucket : slots_) {
    auto it = std::remove_if(bucket.begin(), bucket.end(),
                             [&](const Pending& p) { return p.id == id; });
    armed_ -= static_cast<std::size_t>(bucket.end() - it);
    bucket.erase(it, bucket.end());
  }
}

// --------------------------------------------------------- SessionSupervisor

SessionSupervisor::SessionSupervisor(LivenessConfig config)
    : config_(std::move(config)),
      interval_(std::max<long long>(
          1, static_cast<long long>(config_.heartbeat_interval_s * 1000.0))),
      wheel_(std::chrono::milliseconds(std::max<long long>(1, interval_.count() / 4))),
      last_snapshot_write_(Clock::now()),
      thread_([this] { loop(); }) {}

SessionSupervisor::~SessionSupervisor() { stop(); }

void SessionSupervisor::attach(std::shared_ptr<FrameRouter> src,
                               std::shared_ptr<FrameRouter> dst) {
  {
    std::lock_guard lk(mu_);
    src_ = std::move(src);
    dst_ = std::move(dst);
  }
  // Registered outside mu_: the pump calls the handler which takes mu_.
  std::shared_ptr<FrameRouter> s;
  {
    std::lock_guard lk(mu_);
    s = src_;
  }
  if (s != nullptr) {
    s->set_pong_handler([this](std::uint32_t session, const net::PingInfo& info) {
      on_pong(session, info);
    });
  }
}

void SessionSupervisor::register_session(std::uint32_t session_id, SessionHooks hooks) {
  const auto now = Clock::now();
  std::lock_guard lk(mu_);
  Watched& w = watched_[session_id];
  w.hooks = std::move(hooks);
  w.registered_at = now;
  w.last_progress_change = now;
  w.last_progress = w.hooks.progress ? w.hooks.progress() : 0;
  wheel_.schedule(session_id, now + interval_);
  LivenessMetrics::get().live_sessions.set(static_cast<double>(watched_.size()));
  cv_.notify_all();
}

void SessionSupervisor::deregister(std::uint32_t session_id) {
  std::lock_guard lk(mu_);
  wheel_.cancel(session_id);
  watched_.erase(session_id);
  LivenessMetrics::get().live_sessions.set(static_cast<double>(watched_.size()));
}

void SessionSupervisor::cancel(std::uint32_t session_id, const std::string& why) {
  std::lock_guard lk(mu_);
  auto it = watched_.find(session_id);
  cancel_locked(session_id, it == watched_.end() ? nullptr : &it->second, why);
}

void SessionSupervisor::cancel_locked(std::uint32_t id, Watched* w,
                                      const std::string& why) {
  if (w != nullptr && w->hooks.token != nullptr) w->hooks.token->cancel(why);
  if (src_ != nullptr) src_->poison(id, why);
  if (dst_ != nullptr) dst_->poison(id, why);
  LivenessMetrics::get().cancels.add(1);
}

void SessionSupervisor::declare_wedged_locked(std::uint32_t id, Watched& w,
                                              Clock::time_point now, std::string why) {
  if (w.wedged) return;
  w.wedged = true;
  w.wedge_reason = std::move(why);
  // Detection latency: how long after the session's last sign of life
  // (pong or forward progress, whichever is fresher) we pulled the
  // trigger. This is the number the chaos soak reports a p99 for.
  auto last_alive = std::max(w.registered_at, w.last_progress_change);
  if (w.ever_ponged) last_alive = std::max(last_alive, w.last_pong);
  const double detect_s =
      std::chrono::duration<double>(now - last_alive).count();
  LivenessMetrics::get().wedged.add(1);
  LivenessMetrics::get().detection.record(std::max(0.0, detect_s));
  cancel_locked(id, &w, w.wedge_reason);
}

void SessionSupervisor::on_pong(std::uint32_t session, const net::PingInfo& info) {
  const auto now = Clock::now();
  const std::uint64_t now_ns = steady_now_ns();
  std::lock_guard lk(mu_);
  auto it = watched_.find(session);
  if (it == watched_.end()) return;
  Watched& w = it->second;
  if (info.seq <= w.last_pong_seq && w.ever_ponged) return;  // duplicate/stale echo
  w.last_pong_seq = std::max(w.last_pong_seq, info.seq);
  w.last_pong = now;
  w.ever_ponged = true;
  w.missed = 0;
  if (info.stamp_ns != 0 && now_ns > info.stamp_ns) {
    const double rtt_s = static_cast<double>(now_ns - info.stamp_ns) / 1e9;
    LivenessMetrics::get().rtt.record(rtt_s);
    if (w.hooks.deadline != nullptr) {
      w.hooks.deadline->observe_rtt(rtt_s);
      LivenessMetrics::get().rtt_srtt_us.set(w.hooks.deadline->srtt_ms() * 1000.0);
      LivenessMetrics::get().deadline_ms.set(
          static_cast<double>(w.hooks.deadline->current().count()));
    }
  }
}

void SessionSupervisor::probe_locked(std::uint32_t id, Watched& w,
                                     Clock::time_point now) {
  if (w.wedged) return;  // already cancelled; nothing left to probe

  // Progress watermark first: a blackholed session's shared channel
  // still answers pings, so heartbeats alone can never catch it.
  if (w.hooks.progress) {
    const std::uint64_t p = w.hooks.progress();
    if (p != w.last_progress) {
      w.last_progress = p;
      w.last_progress_change = now;
    } else if (config_.stall_timeout_s > 0 &&
               std::chrono::duration<double>(now - w.last_progress_change).count() >
                   config_.stall_timeout_s) {
      std::ostringstream why;
      why << "wedged: progress watermark stuck at " << p << " for more than "
          << config_.stall_timeout_s << "s";
      declare_wedged_locked(id, w, now, why.str());
      return;
    }
  }

  // Heartbeat accounting: an outstanding probe the peer never echoed is
  // a miss; so is a probe we could not even put on the wire once the
  // session has shown it was reachable before.
  const bool outstanding = w.next_seq > 1 && w.last_pong_seq < w.next_seq - 1;
  net::PingInfo info;
  info.seq = w.next_seq;
  info.stamp_ns = steady_now_ns();
  const bool sent = src_ != nullptr && src_->send_ping(id, info);
  if (sent) {
    w.next_seq += 1;
    w.ever_pinged = true;
  }
  if ((outstanding || (!sent && w.ever_pinged)) && config_.max_missed_heartbeats > 0) {
    w.missed += 1;
    LivenessMetrics::get().missed.add(1);
    if (w.missed >= config_.max_missed_heartbeats) {
      std::ostringstream why;
      why << "wedged: " << w.missed << " consecutive heartbeats unanswered";
      declare_wedged_locked(id, w, now, why.str());
      return;
    }
  }
  wheel_.schedule(id, now + interval_);
}

void SessionSupervisor::loop() {
  std::unique_lock lk(mu_);
  while (!stopped_) {
    const auto tick = std::chrono::milliseconds(
        std::max<long long>(1, std::min<long long>(interval_.count() / 2, 250)));
    cv_.wait_for(lk, tick, [&] { return stopped_; });
    if (stopped_) break;
    const auto now = Clock::now();
    for (std::uint32_t id : wheel_.advance(now)) {
      auto it = watched_.find(id);
      if (it == watched_.end()) continue;
      probe_locked(id, it->second, now);
    }
    if (!config_.snapshot_path.empty() &&
        now - last_snapshot_write_ >= std::chrono::milliseconds(100)) {
      last_snapshot_write_ = now;
      std::vector<SessionView> rows;
      rows.reserve(watched_.size());
      for (const auto& [id, w] : watched_) rows.push_back(view_locked(id, w, now));
      const std::string path = config_.snapshot_path;
      lk.unlock();  // file IO off the hot lock
      write_rows(path, rows);
      lk.lock();
    }
  }
}

SessionView SessionSupervisor::view_locked(std::uint32_t id, const Watched& w,
                                           Clock::time_point now) const {
  SessionView v;
  v.session_id = id;
  v.txn_id = w.hooks.txn_id;
  if (w.hooks.deadline != nullptr) {
    v.rtt_ms = w.hooks.deadline->srtt_ms();
    v.deadline_ms = static_cast<double>(w.hooks.deadline->current().count());
  }
  if (w.ever_ponged) {
    v.heartbeat_age_ms = std::chrono::duration<double, std::milli>(now - w.last_pong).count();
  }
  v.progress = w.last_progress;
  v.missed_heartbeats = w.missed;
  v.wedged = w.wedged;
  if (w.wedged) {
    v.state = w.wedge_reason;
  } else if (w.hooks.state) {
    v.state = w.hooks.state();
  } else {
    v.state = "running";
  }
  return v;
}

std::size_t SessionSupervisor::live_sessions() const {
  std::lock_guard lk(mu_);
  return watched_.size();
}

std::vector<SessionView> SessionSupervisor::snapshot() const {
  const auto now = Clock::now();
  std::lock_guard lk(mu_);
  std::vector<SessionView> rows;
  rows.reserve(watched_.size());
  for (const auto& [id, w] : watched_) rows.push_back(view_locked(id, w, now));
  return rows;
}

bool SessionSupervisor::write_rows(const std::string& path,
                                   const std::vector<SessionView>& rows) {
  std::ostringstream out;
  out << "#hpm-liveness-v1\n";
  for (const SessionView& v : rows) {
    out << v.session_id << ' ' << v.txn_id << ' ' << v.rtt_ms << ' '
        << v.deadline_ms << ' ' << v.heartbeat_age_ms << ' ' << v.progress << ' '
        << v.missed_heartbeats << ' ' << (v.wedged ? "WEDGED " : "LIVE ") << v.state
        << '\n';
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = out.str();
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!wrote) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool SessionSupervisor::write_snapshot(const std::string& path) const {
  return write_rows(path, snapshot());
}

void SessionSupervisor::stop() {
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
    stopped_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  // Drop the pump→handler edge so the routers cannot call back into a
  // supervisor that is being torn down.
  std::shared_ptr<FrameRouter> s;
  {
    std::lock_guard lk(mu_);
    s = src_;
    src_.reset();
    dst_.reset();
  }
  if (s != nullptr) s->set_pong_handler(nullptr);
}

}  // namespace hpm::mig
