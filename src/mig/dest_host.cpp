#include "mig/dest_host.hpp"

#include <thread>

#include "mig/endpoint_util.hpp"
#include "mig/mig_metrics.hpp"
#include "mig/wire_codec.hpp"

namespace hpm::mig {

namespace {

using Clock = std::chrono::steady_clock;

/// What the source durably decided about `txn` FOR THIS INCARNATION, per
/// its journal. Scans the raw records (rather than recover_from_journals)
/// so an in-doubt destination can distinguish "source aborted" from
/// "source has not decided YET" and poll for the verdict. Last decisive
/// record wins. The incarnation makes the poll fencing-aware: a record
/// addressed to a NEWER incarnation means the source already re-targeted
/// the transaction past us — whatever happens over there, this (presumed
/// dead, now revived) destination must resolve to Abort, never adopt a
/// Commit that names someone else.
enum class SourceDecision : std::uint8_t { Undecided, Commit, Abort };

SourceDecision last_source_decision(const std::string& path, std::uint64_t txn,
                                    std::uint32_t incarnation) {
  SourceDecision decision = SourceDecision::Undecided;
  for (const JournalRecord& r : Journal::replay(path)) {
    if (r.txn_id != txn) continue;
    if (r.incarnation > incarnation) {
      decision = SourceDecision::Abort;  // fenced: the source moved on
      continue;
    }
    if (r.incarnation < incarnation) continue;  // stale history, not ours
    switch (r.type) {
      case JournalRecordType::Commit:
      case JournalRecordType::Done:
        decision = SourceDecision::Commit;
        break;
      case JournalRecordType::Abort:
        decision = SourceDecision::Abort;
        break;
      default:
        break;
    }
  }
  return decision;
}

}  // namespace

DestinationHost::DestinationHost(const RunOptions& options, MigrationReport& report,
                                 Journal& journal, std::string source_journal_path,
                                 const net::DeadlinePolicy& deadline,
                                 std::uint32_t session_id)
    : options_(options),
      report_(report),
      journal_(journal),
      source_journal_path_(std::move(source_journal_path)),
      deadline_(deadline),
      session_(session_id) {}

DestinationHost::~DestinationHost() {
  close();
  join();
}

void DestinationHost::start(std::unique_ptr<MessagePort> port) {
  port_ = std::move(port);
  thread_ = std::thread([this] { run(); });
}

bool DestinationHost::offer(std::unique_ptr<MessagePort> port) {
  std::lock_guard lk(mu_);
  if (dead_ || finished_ || closed_) return false;
  if (const auto t = deadline_.current(); t.count() > 0) port->set_timeout(t);
  offered_ = std::move(port);
  cv_.notify_all();
  return true;
}

void DestinationHost::close() {
  std::lock_guard lk(mu_);
  closed_ = true;
  // Wound the port too: on a routed channel the source's own abort only
  // closes the SOURCE router's binding, so a destination blocked in recv
  // (rx mid-stream or the commit gate, deadline 0) would sleep forever —
  // unlike an exclusive channel, where the peer's abort kills both ends.
  if (port_ != nullptr) {
    try {
      port_->abort();
    } catch (...) {
    }
  }
  cv_.notify_all();
}

void DestinationHost::join() {
  if (thread_.joinable()) thread_.join();
}

bool DestinationHost::resumable() const {
  std::lock_guard lk(mu_);
  return !dead_ && !finished_;
}

bool DestinationHost::finished() const {
  std::lock_guard lk(mu_);
  return finished_;
}

bool DestinationHost::committed() const {
  std::lock_guard lk(mu_);
  return committed_;
}

MessagePort* DestinationHost::current() const {
  std::lock_guard lk(mu_);
  return port_.get();
}

void DestinationHost::set_dead(std::exception_ptr error) {
  std::lock_guard lk(mu_);
  dead_ = true;
  if (error_ == nullptr) error_ = std::move(error);
  cv_.notify_all();
}

void DestinationHost::mark_finished() {
  std::lock_guard lk(mu_);
  finished_ = true;
}

/// Park until the source offers a replacement port (true) or closes the
/// session (false).
bool DestinationHost::adopt_replacement() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return offered_ != nullptr || closed_; });
  if (offered_ == nullptr) return false;
  port_ = std::move(offered_);
  return true;
}

void DestinationHost::run() {
  try {
    ti::TypeTable types;
    options_.register_types(types);
    MigContext ctx(types, options_.search);
    ctx.set_stop_after_restore(options_.stop_after_restore);
    session_.announce();
    current()->send(net::MsgType::Hello, hello_payload(ctx.space().arch().name));
    net::Message first = current()->recv();
    if (const auto t = deadline_.current(); t.count() > 0) current()->set_timeout(t);
    if (session_.on_frame(first) == SessionState::Aborted) {
      // A legal Shutdown: the source never migrated.
      mark_finished();
      release_port();
      return;
    }
    const net::StateBeginInfo begin = session_.begin_info();
    journal_.append({JournalRecordType::Begin, begin.txn_id, 0, begin.incarnation,
                     "destination up"});
    ChunkAssembler assembler(begin.chunk_bytes);
    // The chunk cache outlives the transfer only as files; the in-memory
    // index is rebuilt per migration from the directory scan.
    std::unique_ptr<ChunkStore> store;
    if (!options_.chunk_cache_dir.empty()) {
      store = std::make_unique<ChunkStore>(options_.chunk_cache_dir,
                                           options_.chunk_cache_bytes);
      store->open();
    }
    std::thread rx([&] { rx_loop(assembler, begin.txn_id, store.get()); });
    ctx.set_commit_gate([&](std::uint64_t digest) { commit_gate(begin.txn_id, digest); });
    try {
      ctx.begin_restore_streaming(assembler);
      run_destination_program(options_, ctx, report_);
    } catch (...) {
      // rx drains until StateEnd, a port failure, or session close — the
      // source guarantees one of them on every path.
      rx.join();
      throw;
    }
    rx.join();
    mark_finished();  // the workload ran; a lost confirmation cannot undo that
    try {
      current()->send(net::MsgType::Ack, {});
    } catch (...) {
      // Best-effort: the source merely reports CommittedUnconfirmed.
    }
  } catch (const KilledError&) {
    // A crashed process sends no Nack and journals nothing more.
    if (!session_.terminal()) session_.abort_decided("destination crashed");
    set_dead(std::current_exception());
  } catch (const NetError& e) {
    if (!session_.terminal()) session_.abort_decided(e.what());
    set_dead(std::current_exception());
    if (!killed_.load()) {
      try {
        const std::string text = e.what();
        current()->send(net::MsgType::Nack, Bytes(text.begin(), text.end()));
      } catch (...) {
      }
    }
  } catch (...) {
    set_dead(std::current_exception());
    if (!session_.terminal()) {
      session_.abort_decided(exception_text(std::current_exception()));
    }
    if (!killed_.load()) {
      try {
        const std::string text = exception_text(std::current_exception());
        current()->send(net::MsgType::Error, Bytes(text.begin(), text.end()));
      } catch (...) {
      }
    }
  }
  release_port();
}

/// Drop the port: orderly close on success, abort on failure so a peer
/// blocked mid-recv wakes instead of waiting out its deadline.
void DestinationHost::release_port() {
  std::unique_ptr<MessagePort> port;
  bool failed = false;
  {
    std::lock_guard lk(mu_);
    port = std::move(port_);
    failed = dead_;
  }
  if (port == nullptr) return;
  try {
    if (failed) {
      port->abort();
    } else {
      port->close();
    }
  } catch (...) {
  }
}

void DestinationHost::rx_loop(ChunkAssembler& assembler, std::uint64_t txn,
                              ChunkStore* store) {
  const std::uint32_t ack_every = options_.ack_every_chunks;
  std::uint32_t since_ack = 0;
  // Manifest negotiation state (dedup, DESIGN.md §15). The address list
  // doubles as the per-chunk expected-length table the codec decode is
  // bounded by, so a hostile coded payload cannot inflate past it.
  std::vector<ChunkAddr> manifest;
  bool manifest_announced = false;
  std::uint32_t manifest_total = 0;
  std::uint8_t offered_caps = 0;
  for (;;) {
    net::Message msg;
    try {
      msg = current()->recv();
    } catch (const CancelledError& e) {
      // The supervisor poisoned this session's bindings: no replacement
      // port can ever be adopted (the router refuses fresh epochs), so
      // parking would just trade one wedge for another. Fail the stream
      // now; the restore thread unwinds with the typed reason.
      assembler.fail(std::string("session cancelled: ") + e.what());
      return;
    } catch (const NetError& e) {
      // The port died mid-stream, but the stream itself is resumable from
      // the assembler's watermark: park for a replacement port. The
      // source retransmits every chunk from that watermark raw — former
      // cache hits included — so splice-ahead must stop now.
      assembler.mark_resumed();
      session_.park();
      if (!adopt_replacement()) {
        assembler.fail(std::string("chunk stream abandoned: ") + e.what());
        return;
      }
      try {
        current()->send(net::MsgType::ResumeHello,
                        net::encode_resume_hello({net::kProtocolVersion, txn,
                                                  assembler.chunks_received()}));
      } catch (const KilledError&) {
        killed_.store(true);
        assembler.fail("destination crashed");
        return;
      } catch (const NetError&) {
        // That port died instantly; park again. The machine expects
        // Streaming when it parks, so record the brief resume first.
        session_.resume_announced();
        continue;
      }
      session_.resume_announced();
      since_ack = 0;
      continue;
    }
    try {
      session_.on_frame(msg);
    } catch (const ProtocolError& e) {
      // A frame the machine rejects in this state — a hostile or buggy
      // peer, not a recoverable link fault.
      assembler.fail(e.what());
      return;
    }
    if (msg.type == net::MsgType::StateChunk) {
      try {
        const std::uint32_t seq = net::decode_state_chunk_seq(msg.payload);
        if (!manifest_announced) {
          assembler.append(seq, std::span<const std::uint8_t>(msg.payload).subspan(4));
        } else {
          // Dedup framing: u32 seq | u8 codec tag | body.
          if (msg.payload.size() < 5) throw NetError("coded chunk: short payload");
          const std::uint8_t tag = msg.payload[4];
          const std::span<const std::uint8_t> wire =
              std::span<const std::uint8_t>(msg.payload).subspan(5);
          Bytes decoded;
          std::span<const std::uint8_t> body = wire;
          if (tag == static_cast<std::uint8_t>(WireCodec::VarintDelta)) {
            if (seq >= manifest.size()) {
              throw NetError("coded chunk names an index outside the manifest");
            }
            decoded = codec_decode(wire, manifest[seq].length);
            body = decoded;
          } else if (tag != 0) {
            throw NetError("coded chunk: unknown codec tag");
          }
          if (store != nullptr) {
            // Best-effort: a full disk must not fail the migration, only
            // the next run's dedup. put() self-addresses the body, so a
            // lying manifest cannot poison the cache (DESIGN.md §15).
            try {
              store->put(body);
            } catch (...) {
            }
          }
          assembler.append(seq, body);
        }
      } catch (const NetError&) {
        // ProtocolError from the assembler (already poisoned with the
        // typed reason), a short payload, or a hostile coded body.
        assembler.fail("malformed StateChunk payload");
        return;
      }
      if (ack_every != 0 && ++since_ack >= ack_every) {
        since_ack = 0;
        try {
          current()->send(net::MsgType::StateAck,
                          net::encode_state_ack(assembler.chunks_received()));
        } catch (const KilledError&) {
          killed_.store(true);
          assembler.fail("destination crashed");
          return;
        } catch (const NetError&) {
          // The ack path is dying; the next recv parks us.
        }
      }
    } else if (msg.type == net::MsgType::ManifestBegin ||
               msg.type == net::MsgType::ManifestChunk) {
      // The machine already vetted ordering, density, and the txn id.
      try {
        if (msg.type == net::MsgType::ManifestBegin) {
          const net::ManifestBeginInfo mb = net::decode_manifest_begin(msg.payload);
          manifest.reserve(mb.chunk_count);
          manifest_total = mb.chunk_count;
          offered_caps = mb.codec_caps;
          manifest_announced = true;
        } else {
          const net::ManifestChunkInfo batch = net::decode_manifest_chunk(msg.payload);
          for (const net::ManifestEntry& e : batch.entries) {
            manifest.push_back({e.digest, e.length});
          }
        }
      } catch (const NetError&) {
        assembler.fail("malformed manifest payload");
        return;
      }
      if (manifest.size() == manifest_total) {
        // The full address list is in: resolve hits against the store and
        // answer with the miss set. A corrupted cache entry fails its
        // digest check inside begin_manifest and lands in the misses —
        // re-requested within this same negotiation.
        if (store == nullptr) {
          assembler.fail("manifest offered but no chunk cache is configured");
          return;
        }
        std::vector<std::uint32_t> misses;
        try {
          misses = assembler.begin_manifest(manifest, *store);
        } catch (const ProtocolError& e) {
          assembler.fail(e.what());
          return;
        }
        const std::uint64_t hits = manifest.size() - misses.size();
        std::uint64_t saved = 0;
        {
          std::size_t mi = 0;
          for (std::size_t i = 0; i < manifest.size(); ++i) {
            if (mi < misses.size() && misses[mi] == i) {
              ++mi;
            } else {
              saved += manifest[i].length;
            }
          }
        }
        DedupMetrics& dm = DedupMetrics::get();
        dm.hits.add(hits);
        dm.misses.add(misses.size());
        dm.bytes_saved.add(saved);
        store->note_run(manifest.size(), hits, misses.size());
        const WireCodec codec = negotiate_codec(offered_caps, options_.wire_codec);
        try {
          current()->send(
              net::MsgType::ManifestAck,
              net::encode_manifest_ack({static_cast<std::uint8_t>(codec), misses}));
        } catch (const KilledError&) {
          killed_.store(true);
          assembler.fail("destination crashed");
          return;
        } catch (const NetError&) {
          // The ack path is dying; the next recv parks us and the resume
          // retransmits everything raw.
        }
      }
    } else if (msg.type == net::MsgType::StateEnd) {
      try {
        assembler.finish(net::decode_state_end(msg.payload));
      } catch (const NetError&) {
        assembler.fail("malformed StateEnd payload");
      }
      if (store != nullptr) store->sync_dir();  // newly put chunks become durable
      return;
    }
  }
}

/// The voting half of the handoff, run on the restore thread once every
/// restoration check (including the end-to-end digest) passed. Returns
/// normally only with Committed journaled; every throw unwinds the
/// program before the tail runs — the destination must not execute what
/// it does not own.
void DestinationHost::commit_gate(std::uint64_t txn, std::uint64_t digest) {
  MessagePort& port = *current();
  net::Message msg;
  try {
    msg = port.recv();
  } catch (const NetError& e) {
    // Nothing was promised yet: losing the port before Prepare is a
    // plain safe abort, not an in-doubt state.
    throw MigrationError(std::string("handoff lost before Prepare: ") + e.what());
  }
  session_.on_frame(msg);  // Prepare (txn- and incarnation-checked) or a rejection
  const std::uint32_t inc = session_.incarnation();
  journal_.append({JournalRecordType::Prepared, txn, digest, inc, ""});
  TxnMetrics::get().prepares.add(1);
  // The vote echoes our incarnation: a source that already redirected the
  // stream rejects it as fenced instead of mistaking it for the standby's.
  port.send(net::MsgType::PrepareAck, net::encode_prepare_ack({txn, digest, inc}));
  net::Message verdict;
  try {
    verdict = port.recv();
  } catch (const NetError& e) {
    resolve_in_doubt(txn, digest, e.what());
    return;
  }
  // Commit transitions the machine to Committed; Abort raises the typed
  // "source aborted the handoff after Prepare".
  session_.on_frame(verdict);
  record_committed(txn, digest, "");
}

/// We voted yes and the verdict vanished: only the journals can say who
/// owns the process. The source always makes its decision durable before
/// acting on it, so within the grace period a Commit or Abort record
/// appears — unless the source itself crashed pre-decision, which
/// resolves to presumed abort.
void DestinationHost::resolve_in_doubt(std::uint64_t txn, std::uint64_t digest,
                                       const char* why) {
  if (!journal_.durable()) {
    throw MigrationError(
        std::string("in-doubt handoff with no journal to consult (presumed abort): ") +
        why);
  }
  const auto t = deadline_.current();
  const auto grace = t.count() > 0 ? 4 * t : std::chrono::milliseconds(2000);
  const auto deadline = Clock::now() + grace;
  for (;;) {
    switch (last_source_decision(source_journal_path_, txn, session_.incarnation())) {
      case SourceDecision::Commit:
        TxnMetrics::get().indoubt_recoveries.add(1);
        session_.commit_recovered();
        record_committed(txn, digest, "recovered: source journal shows Commit");
        return;
      case SourceDecision::Abort:
        throw MigrationError(
            "in-doubt handoff resolved against us: the source journal shows "
            "Abort or fenced this incarnation off");
      case SourceDecision::Undecided:
        break;
    }
    if (Clock::now() >= deadline) {
      throw MigrationError(
          "in-doubt handoff: no verdict recorded within the grace period "
          "(presumed abort)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void DestinationHost::record_committed(std::uint64_t txn, std::uint64_t digest,
                                       std::string note) {
  journal_.append({JournalRecordType::Committed, txn, digest, session_.incarnation(),
                   std::move(note)});
  TxnMetrics::get().commits.add(1);
  std::lock_guard lk(mu_);
  committed_ = true;
}

}  // namespace hpm::mig
