// Source-side receive pump for one session epoch.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "mig/port.hpp"
#include "mig/session.hpp"

namespace hpm::mig {

/// Every inbound frame flows through the SourceSession machine exactly
/// once, in consumption order: the pump on_frames StateAcks as they
/// arrive (folding the watermark without ever blocking the sender) and
/// queues everything else RAW for the protocol thread, which on_frames a
/// message when it awaits it. An idle TimeoutError on the recv is
/// tolerated — the destination is legitimately silent while it restores —
/// so liveness is enforced by await()'s own deadline, not the port's.
class ControlInbox {
 public:
  ControlInbox(MessagePort& port, SourceSession& session);
  ~ControlInbox();

  /// Abort the port and join the pump. Idempotent; after the first call
  /// the port reference is never touched again, so the port may be
  /// destroyed once stop() returns.
  void stop();

  /// Next non-ack message, already validated by session.on_frame().
  /// Throws the machine's ProtocolError/MigrationError for a rejected
  /// frame, the pump's terminal error once the queue drains, or
  /// TimeoutError past `deadline` (zero = wait forever).
  net::Message await(std::chrono::milliseconds deadline);

 private:
  void pump();

  MessagePort& port_;
  SourceSession& session_;
  std::atomic<bool> stopped_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<net::Message> q_;
  std::exception_ptr error_;
  std::thread thread_;
};

}  // namespace hpm::mig
