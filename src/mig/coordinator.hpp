// The migration coordinator: the paper's "scheduler" plus the two-host
// protocol (§2).
//
// run_migration() models one migration event end-to-end on a single
// physical machine: a source host runs the program; a destination host is
// invoked first and waits for the execution and memory states; at the
// trigger the source collects, transmits over a real channel (in-memory,
// TCP loopback, or shared file — optionally throttled to a modeled
// Ethernet), and terminates; the destination restores and runs the
// program to completion. The report carries the paper's Collect / Tx /
// Restore split.
#pragma once

#include <functional>
#include <string>

#include "mig/context.hpp"
#include "net/simnet.hpp"

namespace hpm::mig {

/// How the two hosts exchange the migration stream.
enum class Transport : std::uint8_t {
  Memory,  ///< in-process pipe
  Socket,  ///< TCP over 127.0.0.1
  File,    ///< shared-file-system spool
};

struct RunOptions {
  /// Registers application types into a TypeTable; executed independently
  /// on both hosts (the paper pre-distributes the transformed program).
  std::function<void(ti::TypeTable&)> register_types;

  /// The migratable program. Runs on the source; re-runs on the
  /// destination to restore and finish.
  std::function<void(MigContext&)> program;

  /// Migrate at the Nth executed poll-point (0 = run to completion).
  std::uint64_t migrate_at_poll = 0;

  /// Asynchronous trigger: a scheduler thread delivers a migration
  /// request this many seconds into the run (0 = disabled). The process
  /// honors it at its next poll-point, like the paper's scheduler-driven
  /// requests. Combines with migrate_at_poll (whichever fires first).
  double request_after_seconds = 0;

  Transport transport = Transport::Memory;
  std::string spool_path = "/tmp/hpm_spool.bin";  ///< Transport::File only

  /// Link model used for the Tx column of the report.
  net::SimulatedLink link = net::SimulatedLink::ethernet_100mbps();

  /// If true, sending actually sleeps per the link model so wall-clock Tx
  /// matches; if false, Tx is computed analytically from the byte count.
  bool throttle = false;

  msr::SearchStrategy search = msr::SearchStrategy::OrderedMap;
};

struct MigrationReport {
  bool migrated = false;
  std::uint64_t stream_bytes = 0;
  double collect_seconds = 0;   ///< Table 1 "Collect"
  double tx_seconds = 0;        ///< Table 1 "Tx" (modeled or measured)
  double restore_seconds = 0;   ///< Table 1 "Restore"
  double total_seconds() const noexcept {
    return collect_seconds + tx_seconds + restore_seconds;
  }
  std::uint64_t source_polls = 0;
  msrm::Collector::Stats collect;
  msrm::Restorer::Stats restore;
  std::string source_arch;  ///< architecture name carried in the stream
};

/// Run one migration experiment. Throws hpm::MigrationError (and
/// subclasses of hpm::Error) on protocol or restoration failure.
MigrationReport run_migration(const RunOptions& options);

}  // namespace hpm::mig
