// The migration coordinator: the paper's "scheduler" plus the two-host
// protocol (§2), hardened for unreliable transports.
//
// run_migration() models one migration event end-to-end on a single
// physical machine: a source host runs the program to its trigger and
// collects; then, per transfer attempt, a destination host is brought up
// first and waits for the execution and memory states; the source
// transmits over a real channel (in-memory, TCP loopback, or shared file —
// optionally throttled to a modeled Ethernet). A damaged, stalled, or
// disconnected transfer is retried with capped exponential backoff; when
// the retry budget is exhausted the source abandons migration and finishes
// the computation locally, so a failed migration never kills the workload.
// The report carries the paper's Collect / Tx / Restore split plus the
// attempt history.
//
// DEPRECATED as a public include path: embedders should include
// hpm/migrate.hpp (or hpm/hpm.hpp), which re-exports this header's
// stable surface into the top-level hpm namespace. Only that facade is a
// stability boundary; this header may be reorganized freely.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mig/context.hpp"
#include "mig/journal.hpp"
#include "mig/port.hpp"
#include "mig/wire_codec.hpp"
#include "net/deadline.hpp"
#include "net/factory.hpp"
#include "net/faulty_channel.hpp"
#include "net/simnet.hpp"
#include "obs/metrics.hpp"

namespace hpm::mig {

/// How the two hosts exchange the migration stream. Now defined by the
/// net layer next to its factory (net::make_channel_pair); this alias
/// keeps mig::Transport::Memory etc. working.
using Transport = net::Transport;

/// One standby destination a failover may re-target an in-flight
/// migration to, in policy order.
struct DestinationCandidate {
  /// Label used in reports and failure causes ("standby-1" by default).
  std::string name;
  /// The standby's own persistent ChunkStore directory. Non-empty turns
  /// the replay into a manifest negotiation against that store, so a warm
  /// standby receives only the chunks it misses. Empty = raw replay.
  std::string chunk_cache_dir;
  /// Fault injected on THIS candidate's sends (chaos testing: kill the
  /// first standby too and prove the second one finishes).
  net::FaultPlan dest_fault_plan{};
};

/// Ordered candidate destinations plus the dial budgets a failover is
/// allowed to spend on each before moving to the next.
struct FailoverPolicy {
  std::vector<DestinationCandidate> standbys;

  /// Connect attempts per candidate before it is skipped.
  int dial_attempts = 3;

  /// Delay before re-dialing a candidate; doubles per attempt, capped
  /// below. Deterministic (no jitter), like the retry backoff.
  double dial_backoff_seconds = 0.01;
  double dial_backoff_cap_seconds = 0.25;

  [[nodiscard]] bool enabled() const noexcept { return !standbys.empty(); }
};

struct RunOptions {
  /// Registers application types into a TypeTable; executed independently
  /// on both hosts (the paper pre-distributes the transformed program).
  std::function<void(ti::TypeTable&)> register_types;

  /// The migratable program. Runs on the source; re-runs on the
  /// destination to restore and finish.
  std::function<void(MigContext&)> program;

  /// Migrate at the Nth executed poll-point (0 = run to completion).
  std::uint64_t migrate_at_poll = 0;

  /// Asynchronous trigger: a scheduler thread delivers a migration
  /// request this many seconds into the run (0 = disabled). The process
  /// honors it at its next poll-point, like the paper's scheduler-driven
  /// requests. Combines with migrate_at_poll (whichever fires first).
  double request_after_seconds = 0;

  Transport transport = Transport::Memory;
  std::string spool_path = "/tmp/hpm_spool.bin";  ///< Transport::File only

  /// Link model used for the Tx column of the report.
  net::SimulatedLink link = net::SimulatedLink::ethernet_100mbps();

  /// If true, sending actually sleeps per the link model so wall-clock Tx
  /// matches; if false, Tx is computed analytically from the byte count.
  bool throttle = false;

  msr::SearchStrategy search = msr::SearchStrategy::OrderedMap;

  /// Worker threads for the collection DFS. 1 = the paper's serial
  /// traversal (default); >1 partitions the root set across a pool
  /// (msrm::collect_roots) — the stream stays bit-identical to serial.
  unsigned collect_threads = 1;

  /// --- pipelined transfer -------------------------------------------------

  /// Overlap Collect / Tx / Restore: the destination comes up before the
  /// program runs and the collection DFS streams fixed-size chunks
  /// (StateBegin/StateChunk/StateEnd) while still walking the graph; the
  /// destination restores each prefix as it lands. File transport has no
  /// duplex rendezvous, so it always takes the serial path. A failed
  /// pipelined attempt is retried serially from the retained stream.
  bool pipeline = false;

  /// Chunk payload size for the pipelined path.
  std::uint32_t chunk_bytes = 64 * 1024;

  /// Benchmark hook forwarded to every restoring context: unwind as soon
  /// as restoration completes instead of running the program tail, so a
  /// harness can time Restore without paying for the computation.
  bool stop_after_restore = false;

  /// --- fault tolerance ----------------------------------------------------

  /// Extra transfer attempts after the first one fails (timeout, CRC
  /// mismatch, disconnect, destination Error/Nack). max_retries + 1 total
  /// attempts; each replays the stream buffered at collection time.
  int max_retries = 2;

  /// Deadline applied to every channel send/recv of the transfer protocol
  /// (seconds; 0 = block without bound). When fault injection is enabled
  /// and no deadline is set, a 5 s default is applied so an injected stall
  /// or truncation can never hang the run.
  double io_timeout_seconds = 0;

  /// Per-IO deadline policy for the transfer protocol. Null = a fixed
  /// policy derived from io_timeout_seconds (bit-for-bit the legacy
  /// behavior); a shared net::DeadlinePolicy::adaptive() lets the
  /// session supervisor's heartbeat RTT samples retune every blocking
  /// call's deadline while the transfer runs.
  std::shared_ptr<net::DeadlinePolicy> deadline_policy;

  /// Delay before the first retry; doubles per retry, capped below.
  /// Deterministic (no jitter) so failure schedules are reproducible.
  double retry_backoff_seconds = 0.01;
  double retry_backoff_cap_seconds = 0.25;

  /// Deterministic fault injected on the source->destination byte stream
  /// (see net/faulty_channel.hpp). Disabled by default.
  net::FaultPlan fault_plan{};

  /// Fault injected on the destination's sends (Hello, StateAck,
  /// PrepareAck, final Ack) — most usefully FaultPlan::kill_after(n) to
  /// script a destination crash at an exact protocol state.
  net::FaultPlan dest_fault_plan{};

  /// --- transactional handoff ----------------------------------------------
  /// The pipelined path runs as a resumable, exactly-once transaction:
  /// the destination acks a chunk watermark every `ack_every_chunks`
  /// chunks; a retryable mid-stream failure reconnects and resumes from
  /// the last watermark out of the retained stream instead of
  /// retransmitting from byte 0; restoration is bracketed by a
  /// Prepare/Commit/Abort exchange whose decisions are write-ahead
  /// journaled (fsync'd) on both ends when `journal_dir` is set, so
  /// Coordinator::recover() can arbitrate ownership after a crash.

  /// Chunk-watermark ack cadence for the pipelined path (0 = no acks, so
  /// a resume would restart from chunk 0).
  std::uint32_t ack_every_chunks = 8;

  /// Directory for the two intent journals (source.journal /
  /// dest.journal). Empty = journaling disabled: the handoff still runs
  /// two-phase, but crash arbitration has nothing durable to consult.
  std::string journal_dir;

  /// Transaction id recorded in the journals and carried in StateBegin.
  /// 0 = derive one from the wall clock (unique across successive runs
  /// appending to the same journal_dir).
  std::uint64_t txn_id = 0;

  /// --- content-addressed dedup (DESIGN.md §15) -----------------------------
  /// When `chunk_cache_dir` names a directory, the pipelined path runs
  /// dedup'd: the source announces the stream's ordered chunk address
  /// list (ManifestBegin/ManifestChunk), the destination answers with the
  /// indices its persistent ChunkStore in that directory cannot produce
  /// (ManifestAck), and only those misses travel as StateChunks — cache
  /// hits are spliced locally. The StateEnd digest still verifies the
  /// reassembled stream end to end, so a poisoned cache can never be
  /// restored. Dedup collects the full stream before sending (the
  /// manifest needs every address), forfeiting collect/tx overlap in
  /// exchange for the byte savings.

  /// Directory of the destination's chunk store. Empty = dedup off.
  std::string chunk_cache_dir;

  /// Byte budget of the chunk store; least-recently-used entries are
  /// evicted past it.
  std::uint64_t chunk_cache_bytes = 256ull << 20;

  /// Wire codec offered/accepted for residual misses (negotiated via a
  /// ManifestBegin capability bit; per-chunk raw fallback when encoding
  /// does not pay). WireCodec::None ships misses raw.
  WireCodec wire_codec = WireCodec::None;

  /// --- destination failover (DESIGN.md §16) --------------------------------
  /// When the destination is declared dead — the transport died past the
  /// resume budget, or a SessionSupervisor poisoned the wedged session —
  /// and standbys are configured, the source re-dials the next candidate
  /// under the next *incarnation* (fencing token), replays the retained
  /// stream from chunk 0, and runs the commit phase against the standby.
  /// The journals carry the incarnation so arbitration names exactly one
  /// committed owner and a revived stale destination is fenced.
  FailoverPolicy failover;

  /// Directory for the disk spill of the retained stream. Non-empty: the
  /// collected stream is written (fsync'd) to
  /// "<retain_dir>/retained-<txn>.stream" once collection finishes and
  /// the heap copy is freed — resume and failover replay from the file,
  /// so a long standby wait cannot die with source memory pressure.
  /// Empty = the retained stream stays in memory (the pre-failover
  /// behavior).
  std::string retain_dir;
};

/// Final fate of the workload for one run_migration() call.
enum class MigrationOutcome : std::uint8_t {
  CompletedLocally,        ///< no migration was triggered; source ran to completion
  Migrated,                ///< state transferred and restored on the destination
  AbortedContinuedLocally, ///< all transfer attempts failed; source finished locally
  /// The source "crashed" (injected KilledError) mid-transaction. Whether
  /// the destination owns the process is decided by the journals — see
  /// Coordinator::recover(); report.migrated says whether the destination
  /// in fact finished the workload.
  SourceCrashed,
  /// Commit was journaled and sent but the destination's confirmation
  /// never arrived. The destination owns the process (it either received
  /// Commit or recovers to Committed from the journals); the source must
  /// NOT fall back to local completion.
  CommittedUnconfirmed,
};

const char* outcome_name(MigrationOutcome outcome) noexcept;

struct MigrationReport {
  bool migrated = false;
  MigrationOutcome outcome = MigrationOutcome::CompletedLocally;
  /// Transfer attempts made (0 when no migration was triggered).
  int attempts = 0;
  /// One entry per FAILED attempt, in order, e.g.
  /// "attempt 1: destination rejected the State frame (Nack): ...".
  std::vector<std::string> failure_causes;

  std::uint64_t stream_bytes = 0;
  /// Table 1 "Collect" / "Tx" / "Restore". Span-derived: the `mig.collect`,
  /// `mig.tx`, and `mig.restore` spans of the successful attempt (Tx is
  /// analytically modeled from the link when throttling is off).
  double collect_seconds = 0;
  double tx_seconds = 0;
  double restore_seconds = 0;
  double total_seconds() const noexcept {
    return collect_seconds + tx_seconds + restore_seconds;
  }
  std::uint64_t source_polls = 0;
  std::string source_arch;  ///< architecture name carried in the stream

  /// 1 − wall / (collect + tx + restore), clamped to [0, 1], for a
  /// successful pipelined attempt (wall runs from the first chunk leaving
  /// collection to the destination's acknowledgement). 0 when the serial
  /// path ran — the phases are strictly sequential there.
  double overlap_ratio = 0;

  /// Chunk sequence the transfer resumed from on the last resume attempt
  /// (-1 = never resumed). A resume retransmits only chunks >= this seq
  /// out of the retained stream.
  std::int64_t resumed_from_seq = -1;

  /// Transaction id of the pipelined handoff (0 = no transaction ran).
  std::uint64_t txn_id = 0;

  /// End-to-end msrm::StreamDigest of the canonical stream (0 = no stream
  /// was collected). When `migrated` is true the destination verified its
  /// reassembled stream against this value before voting, so equal
  /// digests across two runs certify bit-identical restored state.
  std::uint64_t stream_digest = 0;

  /// --- failover accounting (failover.standbys set; 0 otherwise) ------------
  /// Destinations the transaction moved through: 0 until a failover
  /// fires, then the number of re-targets (1 = the first standby won).
  int failovers = 0;
  /// Incarnation of the destination that finally owned the commit phase
  /// (1 = the primary; 0 = no pipelined transaction ran).
  std::uint32_t dest_incarnation = 0;
  /// Wall-clock seconds from declaring the previous destination dead to
  /// the winning destination's commit — the availability gap a failover
  /// cost (0 when no failover fired).
  double failover_downtime_seconds = 0;

  /// --- dedup accounting (chunk_cache_dir set; all 0 otherwise) -------------
  std::uint64_t dedup_manifest_chunks = 0;  ///< addresses announced
  std::uint64_t dedup_hit_chunks = 0;       ///< spliced from the destination store
  std::uint64_t dedup_miss_chunks = 0;      ///< transmitted as StateChunks
  /// Bytes the transfer actually put on the wire for state: manifest
  /// frames plus (possibly codec-compressed) miss chunk payloads.
  /// Compare against stream_bytes for the dedup savings.
  std::uint64_t dedup_wire_bytes = 0;

  /// Everything the pipeline recorded during this run: the delta of the
  /// process-wide obs::Registry across run_migration(), so MSRLT search
  /// counts, PNEW/PREF/PNULL mix, XDR throughput, per-channel/frame byte
  /// counts, and the `trace.*` phase histograms are all one lookup away
  /// (e.g. metrics.counter("net.frames.bytes_sent")).
  obs::MetricsSnapshot metrics;
};

/// Run one migration experiment. Throws hpm::MigrationError (and
/// subclasses of hpm::Error) on unrecoverable protocol or restoration
/// failure; recoverable transport failures are retried and, past the
/// retry budget, degrade to local completion instead of throwing.
MigrationReport run_migration(const RunOptions& options);

/// Run one migration as a session over caller-provided wiring — the entry
/// point sched::migrate_many drives once per concurrent session, with
/// every wiring.connect() binding a fresh epoch of a shared routed
/// channel. Always takes the pipelined transactional path (a routed
/// channel has no serial v3 fallback: untagged frames cannot share the
/// wire), so a transaction that exhausts its attempts degrades straight
/// to local completion. Journals are keyed by transaction id
/// (keyed_source_journal_name) so concurrent sessions can share one
/// journal_dir; recover with Coordinator::recover(dir, txn). The report's
/// registry-delta `metrics` overlaps between concurrent sessions — the
/// per-session truth is the mig.session.<id>.* instruments.
MigrationReport run_routed_migration(const RunOptions& options,
                                     const SessionWiring& wiring);

/// Object-form entry point plus the crash-recovery half of the
/// transactional handoff.
class Coordinator {
 public:
  explicit Coordinator(RunOptions options) : options_(std::move(options)) {}

  /// Equivalent to run_migration(options).
  MigrationReport run() const { return run_migration(options_); }

  [[nodiscard]] const RunOptions& options() const noexcept { return options_; }

  /// Decide, from the intent journals alone, which endpoint owns the
  /// process after a crash. `journal_dir` is the RunOptions::journal_dir
  /// of the interrupted run; a missing or torn journal file is treated as
  /// empty (crash before any write), never as an error.
  static RecoveryVerdict recover(const std::string& journal_dir);

  /// Per-session recovery for a journal directory shared by concurrent
  /// sessions (sched::migrate_many): arbitrates on the txn-keyed pair
  /// source-<txn>.journal / dest-<txn>.journal.
  static RecoveryVerdict recover(const std::string& journal_dir,
                                 std::uint64_t txn_id);

 private:
  RunOptions options_;
};

}  // namespace hpm::mig
