// Durable intent journal for the transactional handoff (DESIGN.md §11).
//
// Two-phase commit only works if each endpoint can answer "what had I
// decided?" after a crash. Each side appends fixed-format, CRC-sealed,
// fsync'd records to its own append-only file BEFORE acting on a
// decision (write-ahead); recover_from_journals() replays both files and
// deterministically names the endpoint that owns the process — never
// both, never neither:
//
//   source journal:  Begin .. [Abort|Commit]* .. Done
//   dest journal:    Begin .. Prepared .. Committed
//
//   owner(txn) = Destination  iff  source logged Commit for txn
//                                  (or dest logged Committed — which the
//                                   protocol only allows after a durable
//                                   source Commit)
//              = Source       otherwise (presumed abort)
//
// The decisive record is the LAST one: a transaction that aborted its
// pipelined leg and then committed a serial retry ends at Commit/Done.
// Replay tolerates a torn tail — a record cut short or CRC-damaged by a
// crash mid-append is ignored along with everything after it, exactly
// the prefix-durability a write-ahead log needs.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hpm::mig {

enum class JournalRecordType : std::uint8_t {
  Begin = 1,      ///< transaction opened (first chunk left / StateBegin seen)
  Prepared = 2,   ///< dest: restoration verified, voted yes, awaiting verdict
  Commit = 3,     ///< source: ownership relinquished — the point of no return
  Abort = 4,      ///< source: handoff cancelled; source still owns the process
  Committed = 5,  ///< dest: verdict received (or recovered); dest owns the process
  Done = 6,       ///< source: destination confirmed completion; nothing to recover
};

const char* journal_record_name(JournalRecordType type) noexcept;

struct JournalRecord {
  JournalRecordType type{};
  std::uint64_t txn_id = 0;
  std::uint64_t digest = 0;  ///< end-to-end stream digest, where known
  /// Destination incarnation the record speaks about: 1 for the primary,
  /// k+1 for the k-th failover standby. A source Commit names the one
  /// incarnation allowed to own the process; every other destination is
  /// fenced. Records written before the v5 failover format replay as
  /// incarnation 1.
  std::uint32_t incarnation = 1;
  std::string note;          ///< free-form context ("recovered from journals", ...)
};

/// Append-only write-ahead log. A default-constructed Journal is the
/// in-memory null journal: append() records nothing durable (used when
/// RunOptions::journal_dir is unset), replay() of its empty path yields
/// nothing. With a path, every append is flushed and fsync'd before
/// returning, so a record that append() returned for survives a crash.
class Journal {
 public:
  Journal() = default;
  explicit Journal(std::string path) : path_(std::move(path)) {}

  /// Late-bind a path onto a null journal. Not thread-safe: call before
  /// any thread can append (the mutex member makes Journal immovable, so
  /// two-phase construction is the way to conditionally enable one).
  void open(std::string path) { path_ = std::move(path); }

  /// Thread-safe (the sender thread Begins while the main thread drives
  /// the commit phase). Throws hpm::MigrationError if the file cannot be
  /// written — a journal that cannot promise durability must not pretend.
  void append(const JournalRecord& record);

  [[nodiscard]] bool durable() const noexcept { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Every intact record, in append order. A missing file is an empty
  /// journal; a torn or CRC-damaged tail record is dropped together with
  /// anything after it.
  static std::vector<JournalRecord> replay(const std::string& path);

 private:
  std::mutex mu_;
  std::string path_;
};

/// File names inside RunOptions::journal_dir for a single (exclusive)
/// migration run.
inline constexpr const char* kSourceJournalName = "source.journal";
inline constexpr const char* kDestJournalName = "dest.journal";

/// File names for a session keyed by its transaction id —
/// "source-<txn>.journal" / "dest-<txn>.journal". Used when several
/// concurrent sessions share one journal directory (sched::migrate_many)
/// so each transaction recovers against its own pair.
std::string keyed_source_journal_name(std::uint64_t txn_id);
std::string keyed_dest_journal_name(std::uint64_t txn_id);

/// Dest journal name for a specific incarnation: the primary (inc 1)
/// keeps the classic name, standby k writes "dest[-<txn>].i<k>.journal"
/// beside it so arbitration can see every destination that ever touched
/// the transaction.
std::string dest_journal_name(std::uint32_t incarnation);
std::string keyed_dest_journal_name(std::uint64_t txn_id, std::uint32_t incarnation);

/// Every destination journal recorded for `txn_id` in `journal_dir` (the
/// primary's plus any failover incarnations'), existing files only,
/// incarnation order. For the exclusive (non-keyed) naming pass txn_id 0.
std::vector<std::string> dest_journal_paths(const std::string& journal_dir,
                                            std::uint64_t txn_id);

/// Transaction ids that have a keyed journal pair (either side) in
/// `journal_dir`, ascending. The directory may not exist (empty result).
/// When `skipped` is non-null, files in the directory that are NOT keyed
/// journals (unrelated names, and zero-length torn journals that hold no
/// replayable record) are reported there instead of silently ignored, so
/// `hpmtool recover` can say what the scan stepped over.
std::vector<std::uint64_t> list_journaled_txns(const std::string& journal_dir,
                                               std::vector<std::string>* skipped = nullptr);

/// Garbage-collect the keyed journal pairs of COMPLETED transactions: a
/// pair whose verdict is "Done recorded" has nothing left to recover, so
/// both files are unlinked and the directory itself is fsync'd — without
/// the directory sync a crash right after the unlink can resurrect the
/// old directory entries, and a resurrected source-<txn>.journal would
/// make a long-dead transaction look recoverable again. Returns the
/// transaction ids swept, ascending. In-doubt or aborted pairs are never
/// touched.
std::vector<std::uint64_t> gc_completed_txn_journals(const std::string& journal_dir);

enum class TxnOwner : std::uint8_t { None, Source, Destination };

const char* txn_owner_name(TxnOwner owner) noexcept;

struct RecoveryVerdict {
  TxnOwner owner = TxnOwner::None;
  bool completed = false;  ///< Done recorded: the handoff finished; nothing to resume
  std::uint64_t txn_id = 0;
  /// When the destination owns: the ONE incarnation allowed to commit
  /// (from the source's Commit record, or the committed journal itself).
  std::uint32_t incarnation = 0;
  /// Destination journals holding a Committed record for the transaction.
  /// The fencing protocol keeps this at most 1; arbitration reports the
  /// count so a violation is visible instead of silently arbitrated away.
  std::uint32_t committed_destinations = 0;
  std::string reason;  ///< human-readable derivation of the verdict
};

/// Deterministic post-crash arbitration from the two journals alone
/// (either file may be missing). Considers the latest transaction id
/// present on either side.
RecoveryVerdict recover_from_journals(const std::string& source_path,
                                      const std::string& dest_path);

/// Multi-destination arbitration: one source journal against every
/// destination journal the transaction ever touched (primary + failover
/// incarnations). The source's last decisive Commit names the fencing
/// incarnation; a Committed record under any other incarnation is a
/// fenced stale destination and never wins ownership.
RecoveryVerdict recover_from_journals(const std::string& source_path,
                                      const std::vector<std::string>& dest_paths);

}  // namespace hpm::mig
