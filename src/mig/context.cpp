#include "mig/context.hpp"

#include <cstring>
#include <new>

#include "mig/chunk_assembler.hpp"
#include "msrm/par_collect.hpp"
#include "msrm/stream.hpp"
#include "xdr/arch.hpp"

namespace hpm::mig {

namespace {

void* aligned_zeroed(std::uint64_t size) {
  void* p = ::operator new(size, std::align_val_t{16});
  std::memset(p, 0, size);
  return p;
}

void aligned_free(void* p) { ::operator delete(p, std::align_val_t{16}); }

}  // namespace

MigContext::~MigContext() {
  for (void* p : heap_owned_) aligned_free(p);
  for (const LocalVar& g : globals_) aligned_free(reinterpret_cast<void*>(g.addr));
}

void* MigContext::make_global(const char* name, ti::TypeId type, std::uint32_t count) {
  if (!frames_.empty()) {
    throw MigrationError("globals must be created before any migratable frame is entered");
  }
  const std::uint64_t size = space_.block_size(type, count);
  void* storage = aligned_zeroed(size);
  LocalVar var;
  var.name = name;
  var.addr = reinterpret_cast<msr::Address>(storage);
  var.type = type;
  var.count = count;
  var.block = space_.msrlt().register_block(msr::Segment::Global, var.addr, size, type,
                                            count, name);
  if (mode_ == Mode::Restoring) {
    if (globals_bound_ >= exec_.globals.size()) {
      throw MigrationError("destination registered more globals than the stream carries");
    }
    bind_saved(exec_.globals[globals_bound_++], var);
  }
  globals_.push_back(var);
  return storage;
}

void* MigContext::heap_alloc_raw(ti::TypeId type, std::uint32_t count, const char* name) {
  const std::uint64_t size = space_.block_size(type, count);
  void* storage = aligned_zeroed(size);
  space_.msrlt().register_block(msr::Segment::Heap,
                                reinterpret_cast<msr::Address>(storage), size, type, count,
                                name);
  heap_owned_.insert(storage);
  return storage;
}

void MigContext::heap_free(void* p) {
  const auto it = heap_owned_.find(p);
  if (it == heap_owned_.end()) {
    throw MigrationError("heap_free: pointer was not allocated by this context");
  }
  space_.msrlt().unregister(reinterpret_cast<msr::Address>(p));
  heap_owned_.erase(it);
  aligned_free(p);
}

void MigContext::enter_frame(Frame& frame) {
  frames_.push_back(&frame);
  if (mode_ == Mode::Restoring) {
    if (restore_depth_ >= exec_.frames.size()) {
      throw MigrationError("restore re-execution entered more frames than were saved");
    }
    const SavedFrame& saved = exec_.frames[restore_depth_];
    if (saved.func != frame.func) {
      throw MigrationError(std::string("restore frame mismatch: expected '") + saved.func +
                           "', program entered '" + frame.func + "'");
    }
    frame.restore_from = &saved;
    ++restore_depth_;
  }
}

void MigContext::leave_frame(Frame& frame) {
  if (frames_.empty() || frames_.back() != &frame) {
    // Frames unwind strictly LIFO; anything else is macro misuse.
    std::terminate();
  }
  for (const LocalVar& var : frame.locals) space_.msrlt().unregister(var.addr);
  frames_.pop_back();
}

void MigContext::add_local(Frame& frame, const char* name, void* addr, ti::TypeId type,
                           std::uint32_t count) {
  LocalVar var;
  var.name = name;
  var.addr = reinterpret_cast<msr::Address>(addr);
  var.type = type;
  var.count = count;
  const std::uint64_t size = space_.block_size(type, count);
  var.block =
      space_.msrlt().register_block(msr::Segment::Stack, var.addr, size, type, count, name);
  if (frame.restore_from != nullptr) {
    if (frame.next_restore_var >= frame.restore_from->vars.size()) {
      throw MigrationError(std::string("frame '") + frame.func +
                           "' registered more locals than the stream carries");
    }
    bind_saved(frame.restore_from->vars[frame.next_restore_var++], var);
  }
  frame.locals.push_back(std::move(var));
}

void MigContext::bind_saved(const SavedVar& saved, const LocalVar& dest) {
  if (saved.name != dest.name || saved.type != dest.type || saved.count != dest.count) {
    throw MigrationError("live-variable mismatch: stream has '" + saved.name +
                         "', destination registered '" + dest.name +
                         "' (differing program versions?)");
  }
  restorer_->bind(saved.source_block, dest.block, dest.type, dest.count);
}

void MigContext::poll(Frame& frame, std::uint32_t label) {
  frame.current_point = label;
  if (mode_ == Mode::Restoring) {
    finish_restore(frame, label);
    return;
  }
  ++poll_count_;
  if (poll_observer_) poll_observer_(*this);
  const bool due = requested_.load(std::memory_order_relaxed) ||
                   (migrate_at_poll_ != 0 && poll_count_ >= migrate_at_poll_);
  if (due) do_migration(label);
}

ExecutionState MigContext::snapshot_execution_state() const {
  ExecutionState state;
  state.frames.reserve(frames_.size());
  for (const Frame* frame : frames_) {
    SavedFrame sf;
    sf.func = frame->func;
    sf.resume_point = frame->current_point;
    sf.vars.reserve(frame->locals.size());
    for (const LocalVar& var : frame->locals) {
      sf.vars.push_back(SavedVar{var.name, var.type, var.count, var.block});
    }
    state.frames.push_back(std::move(sf));
  }
  state.globals.reserve(globals_.size());
  for (const LocalVar& var : globals_) {
    state.globals.push_back(SavedVar{var.name, var.type, var.count, var.block});
  }
  return state;
}

void MigContext::set_collect_sink(std::size_t chunk_bytes, xdr::Encoder::SinkFn sink) {
  collect_chunk_ = chunk_bytes;
  collect_sink_ = std::move(sink);
}

void MigContext::do_migration(std::uint32_t label) {
  obs::Span span("mig.collect");
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  // Pre-size from the MSRLT: the stream carries every reachable block's
  // bytes plus bounded per-record framing, so this estimate makes encoder
  // growth a non-event even for multi-megabyte heaps.
  xdr::Encoder enc(space_.msrlt().tracked_bytes() +
                   space_.msrlt().block_count() * 32 + 4096);
  // End-to-end digest tap: accumulate over exactly the bytes that leave
  // through the sink (the canonical stream in chunk order), or one-shot
  // over the retained stream when collection is not streamed.
  msrm::StreamDigest digest;
  if (collect_sink_) {
    enc.set_sink(collect_chunk_, [this, &digest](std::span<const std::uint8_t> bytes) {
      digest.update(bytes);
      collect_sink_(bytes);
    });
  }
  msrm::write_header(enc, {space_.arch().name, types_->signature()});
  // Ship the TI table so the destination can adopt shell types interned by
  // source code it will skip during restoration.
  types_->encode(enc);

  // Execution state: frames outermost-first for skeleton re-execution.
  snapshot_execution_state().encode(enc);

  // Memory state: live data innermost-frame-first (the paper's order),
  // then globals. One root per live variable; the duplicate guard makes
  // later records PREFs. collect_roots runs the serial Collector at
  // collect_threads <= 1 and the ownership-partitioned parallel path
  // (bit-identical stream) otherwise.
  std::vector<msr::Address> roots;
  for (std::size_t i = frames_.size(); i-- > 0;) {
    for (const LocalVar& var : frames_[i]->locals) roots.push_back(var.addr);
  }
  for (const LocalVar& var : globals_) roots.push_back(var.addr);
  msrm::collect_roots(space_, enc, roots, collect_threads_);

  msrm::finish_stream(enc);
  enc.flush_sink();  // sub-chunk remainder (incl. the trailer) goes out too
  stream_ = enc.take();
  if (!collect_sink_) digest.update({stream_.data(), stream_.size()});
  collect_digest_ = digest.value();
  span.arg("stream_bytes", std::uint64_t{stream_.size()});
  metrics_.collect_seconds = span.finish();
  metrics_.stream_bytes = stream_.size();
  metrics_.tracked_blocks = space_.msrlt().block_count();
  metrics_.collect = obs::Registry::process().snapshot().delta_since(before);
  throw MigrationExit{label};
}

void MigContext::begin_restore(Bytes stream) {
  if (!frames_.empty()) {
    throw MigrationError("begin_restore must be called before the program starts");
  }
  restore_span_ = std::make_unique<obs::Span>("mig.restore");
  restore_before_ = obs::Registry::process().snapshot();
  restore_stream_ = std::move(stream);
  const auto payload = msrm::check_stream(restore_stream_);
  dec_.emplace(payload);
  restore_from_decoder();
}

void MigContext::begin_restore_streaming(ChunkAssembler& assembler) {
  if (!frames_.empty()) {
    throw MigrationError("begin_restore must be called before the program starts");
  }
  assembler_ = &assembler;
  restore_span_ = std::make_unique<obs::Span>("mig.restore");
  restore_before_ = obs::Registry::process().snapshot();
  restore_stream_.clear();
  // The decoder starts empty and pulls bytes from the assembler on
  // demand; restore_stream_ is consumer-owned, so the rebase after each
  // fetch is single-threaded. End-to-end stream checks run at the
  // migration point, once the whole stream has arrived.
  dec_.emplace(std::span<const std::uint8_t>{});
  dec_->set_refill([this](std::size_t min_total) {
    if (!assembler_->fetch(restore_stream_, min_total)) return false;
    dec_->rebase({restore_stream_.data(), restore_stream_.size()});
    return true;
  });
  restore_from_decoder();
}

/// Shared restore prologue: header, type table, execution state, restorer,
/// retroactive global binding. dec_ must be positioned at the stream head.
void MigContext::restore_from_decoder() {
  const msrm::StreamHeader header = msrm::read_header(*dec_);
  // The signature is checked at the migration point (finish_restore), not
  // here: the program interns pointer/array shell types while it runs, so
  // the tables only converge once the destination has re-executed its
  // prologues down to the migration point.
  header_signature_ = header.ti_signature;
  {
    const ti::TypeTable source_table = ti::TypeTable::decode(*dec_);
    if (source_table.signature() != header_signature_) {
      throw MigrationError("stream type table does not match its header signature");
    }
    types_->adopt_tail(source_table);
  }
  exec_ = ExecutionState::decode(*dec_);
  if (exec_.frames.empty()) throw MigrationError("stream carries no frames");
  restorer_ = std::make_unique<msrm::Restorer>(space_, *dec_,
                                               xdr::arch_by_name(header.source_arch));
  mode_ = Mode::Restoring;
  restore_depth_ = 0;
  globals_bound_ = 0;
  // Globals the program registered *before* begin_restore (none in the
  // canonical idiom, but allowed) are bound retroactively.
  for (const LocalVar& var : globals_) {
    if (globals_bound_ >= exec_.globals.size()) {
      throw MigrationError("destination registered more globals than the stream carries");
    }
    bind_saved(exec_.globals[globals_bound_++], var);
  }
}

void MigContext::finish_restore(Frame& frame, std::uint32_t label) {
  if (restore_depth_ != exec_.frames.size() || frames_.back() != &frame) {
    throw MigrationError("poll-point reached during restore before the innermost saved "
                         "frame was re-entered (annotation/control-flow mismatch)");
  }
  const SavedFrame& innermost = exec_.frames.back();
  if (innermost.resume_point != label) {
    throw MigrationError("restore resumed at poll-point " + std::to_string(label) +
                         " but the stream was collected at " +
                         std::to_string(innermost.resume_point));
  }
  if (globals_bound_ != exec_.globals.size()) {
    throw MigrationError("destination registered fewer globals than the stream carries");
  }
  if (header_signature_ != types_->signature()) {
    throw MigrationError(
        "type-table signature mismatch at the migration point: source and "
        "destination interned different type registrations");
  }

  // Decode the data section in collection order: frames innermost-first,
  // then globals. Every record must land in the storage bound for it.
  for (std::size_t i = frames_.size(); i-- > 0;) {
    const Frame* f = frames_[i];
    if (f->restore_from == nullptr ||
        f->next_restore_var != f->restore_from->vars.size()) {
      throw MigrationError(std::string("frame '") + f->func +
                           "' registered fewer locals than the stream carries");
    }
    for (const LocalVar& var : f->locals) {
      const msr::BlockId got = restorer_->restore_variable();
      if (got != var.block) {
        throw MigrationError("variable record for '" + var.name +
                             "' restored into the wrong block");
      }
    }
  }
  for (const LocalVar& var : globals_) {
    const msr::BlockId got = restorer_->restore_variable();
    if (got != var.block) {
      throw MigrationError("global record for '" + var.name +
                           "' restored into the wrong block");
    }
  }
  std::uint64_t restored_digest = 0;
  if (assembler_ != nullptr) {
    // Chunked stream: wait for the orderly end (the assembler has already
    // verified chunk count and byte total), pull every remaining byte,
    // compare the end-to-end digest the source computed over the canonical
    // stream against our own — FIRST, so corruption that slipped past
    // every frame CRC is named for what it is — then run the serial
    // path's trailer check. Exactly the 5-byte trailer may stay undecoded.
    const std::uint64_t total = assembler_->await_complete();
    while (restore_stream_.size() < total && assembler_->fetch(restore_stream_, total)) {
    }
    dec_->rebase({restore_stream_.data(), restore_stream_.size()});
    restored_digest = msrm::StreamDigest::of({restore_stream_.data(), restore_stream_.size()});
    if (restored_digest != assembler_->end_info().digest) {
      throw MigrationError(
          "end-to-end digest mismatch: canonical stream damaged between "
          "collection and restoration despite intact frame CRCs");
    }
    msrm::check_stream(restore_stream_);
    if (dec_->remaining() != 5) {
      throw MigrationError("migration stream has " + std::to_string(dec_->remaining()) +
                           " bytes after the last record (expected the 5-byte trailer)");
    }
  } else if (!dec_->at_end()) {
    throw MigrationError("migration stream has " + std::to_string(dec_->remaining()) +
                         " undecoded bytes after restoration");
  }

  // Adopt restored heap blocks into the migratable heap so the program
  // can free them normally. Every allocation the space made during this
  // restoration is a heap block (stack/global records bind to existing
  // storage), so a bulk ownership transfer is exact — and O(1).
  heap_owned_.merge(space_.take_all_owned());

  restore_span_->arg("stream_bytes", std::uint64_t{restore_stream_.size()});
  metrics_.restore_seconds = restore_span_->finish();
  restore_span_.reset();
  metrics_.restore = obs::Registry::process().snapshot().delta_since(restore_before_);
  metrics_.stream_bytes = restore_stream_.size();

  const bool streamed = assembler_ != nullptr;
  mode_ = Mode::Normal;
  restorer_.reset();
  dec_.reset();
  restore_stream_.clear();
  assembler_ = nullptr;
  for (Frame* f : frames_) f->restore_from = nullptr;
  // Commit gate (transactional handoff): restoration is fully verified,
  // but the tail must not run until the source relinquishes ownership. A
  // throw here unwinds the not-yet-owned process.
  if (streamed && commit_gate_) commit_gate_(restored_digest);
  if (stop_after_restore_) throw MigrationExit{label};
}

}  // namespace hpm::mig
