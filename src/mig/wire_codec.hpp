// Wire-compression codec for residual cache misses (DESIGN.md §15).
//
// The canonical stream is dense with 64-bit fields whose *deltas* are
// small — block ids and leaf ordinals from the PNEW/PREF pointer grammar
// grow monotonically, and zero runs dominate padding — so the codec
// treats a chunk body as a sequence of big-endian u64 words, delta-codes
// consecutive words, zigzags the signed delta, and emits it as a LEB128
// varint; the sub-8-byte tail rides raw. Worst case (high-entropy floats)
// expands ~25%, which is why the sender keeps a per-chunk raw fallback:
// the codec tag travels with each chunk, never as a stream-wide mode.
//
// Decoding is bounded by the expected body length from the chunk's
// manifest address: a hostile encoding can never drive an allocation
// past it, and truncated/overlong varints or a length mismatch throw
// hpm::NetError before any byte reaches the assembler.
#pragma once

#include <cstdint>
#include <span>

#include "common/hexdump.hpp"

namespace hpm::mig {

/// Codec selection in RunOptions and on the wire. Values are wire-stable:
/// the per-chunk tag byte and the ManifestAck choice byte carry them.
enum class WireCodec : std::uint8_t {
  None = 0,         ///< raw chunk bodies
  VarintDelta = 1,  ///< zigzag(delta(u64 words)) as LEB128 varints + raw tail
};

/// Capability bitmask exchanged in ManifestBegin (source's offer); the
/// destination answers with a single WireCodec choice in ManifestAck.
inline constexpr std::uint8_t kCodecCapVarintDelta = 0x01;

[[nodiscard]] std::uint8_t codec_caps_of(WireCodec codec);
[[nodiscard]] WireCodec negotiate_codec(std::uint8_t offered_caps, WireCodec own);

/// Encode one chunk body with VarintDelta. May be larger than the input;
/// the caller compares sizes and sends raw when encoding does not pay.
[[nodiscard]] Bytes codec_encode(std::span<const std::uint8_t> body);

/// Decode a VarintDelta body of exactly `expected_len` bytes. Throws
/// hpm::NetError on truncated or overlong varints, trailing garbage, or
/// a decoded length other than `expected_len`.
[[nodiscard]] Bytes codec_decode(std::span<const std::uint8_t> coded, std::size_t expected_len);

}  // namespace hpm::mig
