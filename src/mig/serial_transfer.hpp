// The serial (one-shot, buffered-stream) transfer path.
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "mig/coordinator.hpp"

namespace hpm::mig {

/// One serial transfer attempt: bring up a destination, move the buffered
/// stream, wait for the verdict. Returns true on success; on a
/// recoverable failure returns false with `cause` set. Unrecoverable
/// source-side failures (anything outside the hpm::Error hierarchy)
/// propagate. This is the only path File transport can take (no duplex
/// rendezvous), and the fallback a failed pipelined transaction replays
/// its retained stream through.
bool attempt_transfer(const RunOptions& options, const Bytes& stream,
                      MigrationReport& report,
                      const std::shared_ptr<net::FaultState>& fault_state,
                      const std::shared_ptr<net::FaultState>& dest_fault_state,
                      std::chrono::milliseconds timeout, std::string& cause);

}  // namespace hpm::mig
