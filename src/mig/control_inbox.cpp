#include "mig/control_inbox.hpp"

#include "mig/mig_metrics.hpp"

namespace hpm::mig {

ControlInbox::ControlInbox(MessagePort& port, SourceSession& session)
    : port_(port), session_(session), thread_([this] { pump(); }) {}

ControlInbox::~ControlInbox() { stop(); }

void ControlInbox::stop() {
  if (!stopped_.exchange(true)) {
    try {
      port_.abort();
    } catch (...) {
    }
  }
  if (thread_.joinable()) thread_.join();
}

net::Message ControlInbox::await(std::chrono::milliseconds deadline) {
  std::unique_lock lk(mu_);
  auto ready = [&] { return !q_.empty() || error_ != nullptr; };
  if (deadline.count() > 0) {
    if (!cv_.wait_for(lk, deadline, ready)) {
      throw TimeoutError("timed out waiting for the destination's reply");
    }
  } else {
    cv_.wait(lk, ready);
  }
  if (!q_.empty()) {
    net::Message msg = std::move(q_.front());
    q_.pop_front();
    lk.unlock();
    // The machine sees the frame at the moment the protocol thread
    // consumes it — never out of order with the frames already consumed.
    session_.on_frame(msg);
    return msg;
  }
  std::rethrow_exception(error_);
}

void ControlInbox::pump() {
  try {
    for (;;) {
      net::Message msg;
      try {
        msg = port_.recv();
      } catch (const TimeoutError&) {
        if (stopped_.load()) throw;
        continue;
      }
      if (msg.type == net::MsgType::StateAck) {
        session_.on_frame(msg);
        ResumeMetrics::get().last_acked.set(session_.acked_watermark());
      } else {
        std::lock_guard lk(mu_);
        q_.push_back(std::move(msg));
        cv_.notify_all();
      }
    }
  } catch (...) {
    std::lock_guard lk(mu_);
    error_ = std::current_exception();
    cv_.notify_all();
  }
}

}  // namespace hpm::mig
