// Content-addressed chunk store: the destination-side persistent cache
// behind dedup'd transfer (DESIGN.md §15).
//
// A chunk's address is the msrm::StreamDigest of its canonical body plus
// the body length — stable across runs because the canonical stream is
// deterministic for a given process state (logical block ids, not raw
// addresses). The store is a directory of addressed chunk files with an
// in-memory index and LRU eviction to a byte budget. Durability mirrors
// the intent journal's hardening: every record is CRC-sealed and fsync'd,
// open() tolerates torn entries (dropped, not fatal), and load() verifies
// the body digest so a damaged or poisoned entry degrades to a cache miss
// instead of corrupting a restore.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "common/hexdump.hpp"

namespace hpm::mig {

/// Stable content address of one canonical chunk body. The length rides
/// along so the wire codec can bound its decode and so two bodies that
/// collide on the 64-bit digest but differ in size never alias.
struct ChunkAddr {
  std::uint64_t digest = 0;
  std::uint32_t length = 0;

  friend bool operator==(const ChunkAddr&, const ChunkAddr&) = default;
};

/// Bounded persistent cache of addressed chunks.
///
/// Thread-safety: all public methods are mutex-guarded; one rx thread and
/// one tool process never share an instance, but nothing breaks if they
/// do within a process. Cross-process sharing of a directory is
/// coordinated with an advisory flock on `<dir>/.lock`, held for the
/// duration of open() and gc() — the two operations that scan or unlink
/// en masse and would otherwise race a concurrent GC. Individual put()s
/// stay lock-free across processes: entries are content-addressed (two
/// writers of the same address write identical bytes) and load() verifies
/// every body, so last-writer-wins is safe there.
class ChunkStore {
 public:
  /// Default byte budget: generous for the bench workloads, small enough
  /// that a runaway fleet cannot fill a disk.
  static constexpr std::uint64_t kDefaultBudget = 256ull << 20;

  explicit ChunkStore(std::string dir, std::uint64_t max_bytes = kDefaultBudget);
  ~ChunkStore();
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  /// Create the directory if missing and index the entries already in it.
  /// A file whose name or size does not match its own header (a torn
  /// write from a crashed run) is unlinked, like the journal's torn-tail
  /// replay. Throws hpm::Error if the directory cannot be created/read.
  void open();

  /// Content address of a canonical chunk body.
  [[nodiscard]] static ChunkAddr address_of(std::span<const std::uint8_t> body);

  /// Index-only membership probe (no IO, no LRU touch).
  [[nodiscard]] bool contains(const ChunkAddr& addr) const;

  /// Read the addressed body into `out`. Verifies the record CRC and
  /// recomputes the body digest; any mismatch unlinks the entry and
  /// returns false — a corrupted cache entry is a miss, never bad bytes.
  bool load(const ChunkAddr& addr, Bytes& out);

  /// Insert (or LRU-touch) a body under its own computed address. The
  /// record is fsync'd before put() returns; call sync_dir() once after a
  /// batch of puts to make the directory entries themselves durable.
  /// Evicts least-recently-used entries down to the byte budget.
  void put(std::span<const std::uint8_t> body);

  /// fsync the store directory (after a batch of puts or unlinks), the
  /// same way journal GC pins its unlinks.
  void sync_dir();

  /// Evict least-recently-used entries until the store holds at most
  /// `budget` bytes; fsyncs the directory. Returns the number of entries
  /// evicted. Holds the cross-process directory lock so two processes
  /// GC'ing the same store serialize instead of double-unlinking.
  std::size_t gc(std::uint64_t budget);

  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::uint64_t bytes() const;  ///< on-disk bytes incl. record headers
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Persist the outcome of one manifest negotiation (announced chunks,
  /// cache hits, misses) to `<dir>/last-run.stats` so `hpmtool
  /// chunk-cache` can report the hit ratio after the fact.
  void note_run(std::uint64_t manifest_chunks, std::uint64_t hits, std::uint64_t misses);

  struct RunStats {
    bool valid = false;
    std::uint64_t manifest_chunks = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  /// Read the stats file written by note_run(); valid=false if absent or
  /// malformed (never throws for a damaged stats file).
  [[nodiscard]] static RunStats read_run_stats(const std::string& dir);

 private:
  struct Entry {
    ChunkAddr addr;
    std::uint64_t file_bytes = 0;  ///< header + body + CRC on disk
    std::list<std::string>::iterator lru;
  };

  [[nodiscard]] static std::string file_name(const ChunkAddr& addr);
  /// Ensure `<dir>/.lock` is open and take the exclusive advisory flock;
  /// blocks until the peer process releases it. Returns false only if the
  /// lock file cannot be created (degrades to uncoordinated, like before).
  bool lock_dir();
  void unlock_dir();
  void touch_locked(Entry& e, const std::string& name);
  /// By value: callers pass the LRU tail's own string, which erasing the
  /// list node would otherwise destroy mid-call.
  void drop_locked(std::string name, bool unlink_file);
  void evict_to_locked(std::uint64_t budget);

  std::string dir_;
  std::uint64_t max_bytes_;
  int lock_fd_ = -1;  ///< `<dir>/.lock`, flock'd during open()/gc()
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> index_;  ///< keyed by entry file name
  std::list<std::string> lru_;                    ///< front = most recently used
  std::uint64_t bytes_ = 0;
};

}  // namespace hpm::mig
