// SessionSupervisor: per-session failure detection and targeted
// cancellation for migrations multiplexed over one shared channel
// (DESIGN.md §13).
//
// PR 5 made N sessions share a wire; this layer makes each one
// individually killable, observable, and deadline-bounded. A sweep
// thread drives a monotonic-clock timer wheel: each registered session
// is probed with Ping frames through the source-side FrameRouter (the
// peer router's pump answers Pong), every echo feeds the session's
// adaptive DeadlinePolicy, and a session is declared WEDGED after K
// consecutive missed heartbeats — the wire under it is dead — or when
// its progress watermark (frames delivered by either router) stops
// moving for the configured stall bound — the wire is fine but the
// session is stuck. A wedged session is cancelled in place: its
// CancelToken trips and both routers poison exactly its bindings, so
// every blocked operation unwinds with CancelledError while sibling
// sessions on the same channel never notice.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mig/cancel_token.hpp"
#include "mig/frame_router.hpp"
#include "net/deadline.hpp"

namespace hpm::mig {

/// Failure-detector policy knobs.
struct LivenessConfig {
  /// Ping cadence per session.
  double heartbeat_interval_s = 0.1;
  /// Consecutive unanswered pings before the session is wedged (the
  /// classic K of a heartbeat failure detector). 0 disables the detector.
  int max_missed_heartbeats = 4;
  /// How long the progress watermark may sit still before the session is
  /// wedged. Generous by default — a large restore produces no frames
  /// while it grinds — and tightened by harnesses that know their
  /// workload. 0 disables the detector.
  double stall_timeout_s = 5.0;
  /// Clamps/scaling for the adaptive per-session IO deadlines minted
  /// from the heartbeat RTT.
  net::RttConfig rtt{};
  /// When set, the registry snapshot is rewritten here (atomically, via
  /// rename) after each sweep — the file `hpmtool sessions --live` reads.
  std::string snapshot_path;
};

/// Everything the supervisor needs to watch and, if necessary, kill one
/// session. All members optional except the token.
struct SessionHooks {
  std::uint64_t txn_id = 0;                       ///< for the snapshot/tool view
  std::shared_ptr<net::DeadlinePolicy> deadline;  ///< fed with every RTT sample
  std::shared_ptr<CancelToken> token;             ///< tripped on cancellation
  std::function<std::uint64_t()> progress;        ///< monotonic watermark
  std::function<std::string()> state;             ///< human-readable session state
};

/// One row of the supervisor's registry snapshot.
struct SessionView {
  std::uint32_t session_id = 0;
  std::uint64_t txn_id = 0;
  double rtt_ms = 0;        ///< smoothed estimate (0 = no sample yet)
  double deadline_ms = 0;   ///< current adaptive/fixed IO deadline
  double heartbeat_age_ms = -1;  ///< since the last Pong (-1 = never answered)
  std::uint64_t progress = 0;
  int missed_heartbeats = 0;
  bool wedged = false;
  std::string state;        ///< hooks.state() or the wedge reason
};

/// Coarse monotonic timer wheel: `slots` buckets of `tick` width; an
/// entry is hashed into the bucket of its due time and collected when
/// advance() sweeps past it. O(1) schedule, O(due) advance — the classic
/// structure for "N heartbeats at the same cadence". Not thread-safe;
/// the supervisor drives it under its own lock.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TimerWheel(std::chrono::milliseconds tick, std::size_t slots = 64);

  /// Arm (or re-arm) `id` to fire at `due`. A due time in an
  /// already-swept tick fires on the very next advance().
  void schedule(std::uint32_t id, Clock::time_point due);

  /// Every id whose due time has passed, unarmed. `now` never runs
  /// backwards (monotonic clock).
  std::vector<std::uint32_t> advance(Clock::time_point now);

  void cancel(std::uint32_t id);

  [[nodiscard]] std::size_t armed() const noexcept { return armed_; }

 private:
  struct Pending {
    std::uint32_t id = 0;
    Clock::time_point due;
  };

  [[nodiscard]] std::int64_t tick_index(Clock::time_point t) const noexcept;

  std::chrono::milliseconds tick_;
  std::vector<std::vector<Pending>> slots_;
  Clock::time_point origin_;
  std::int64_t swept_ = 0;  ///< highest tick index already advanced past
  std::size_t armed_ = 0;
};

class SessionSupervisor {
 public:
  using Clock = std::chrono::steady_clock;

  explicit SessionSupervisor(LivenessConfig config = {});
  SessionSupervisor(const SessionSupervisor&) = delete;
  SessionSupervisor& operator=(const SessionSupervisor&) = delete;
  ~SessionSupervisor();

  /// Watch one multiplexed channel pair: pings leave through `src` (whose
  /// pong handler this claims) and `dst`'s pump answers them. Call once,
  /// before the first register_session.
  void attach(std::shared_ptr<FrameRouter> src, std::shared_ptr<FrameRouter> dst);

  /// Start watching a session. Probing begins one heartbeat interval
  /// from now; progress is measured from this call.
  void register_session(std::uint32_t session_id, SessionHooks hooks);

  /// The session ended (any outcome) under its own power: stop watching.
  void deregister(std::uint32_t session_id);

  /// Targeted kill, usable by harnesses as well as the detectors: trip
  /// the token and poison the session's bindings on BOTH routers.
  /// Siblings are untouched. Idempotent.
  void cancel(std::uint32_t session_id, const std::string& why);

  [[nodiscard]] std::size_t live_sessions() const;
  [[nodiscard]] std::vector<SessionView> snapshot() const;

  /// Write snapshot() to `path` atomically (tmp + rename), in the
  /// `#hpm-liveness-v1` line format hpmtool sessions --live parses.
  bool write_snapshot(const std::string& path) const;

  /// Join the sweep thread and release the pong handler. Idempotent;
  /// called by the destructor. Registered sessions are NOT cancelled —
  /// stopping the watcher is not killing the watched.
  void stop();

 private:
  struct Watched {
    SessionHooks hooks;
    Clock::time_point registered_at;
    Clock::time_point last_pong;           ///< epoch() = never
    Clock::time_point last_progress_change;
    std::uint64_t last_progress = 0;
    std::uint32_t next_seq = 1;            ///< next ping sequence to send
    std::uint32_t last_pong_seq = 0;
    bool ever_ponged = false;
    bool ever_pinged = false;              ///< a probe reached a live binding
    int missed = 0;
    bool wedged = false;
    std::string wedge_reason;
  };

  void loop();
  /// All four run with mu_ held.
  void probe_locked(std::uint32_t id, Watched& w, Clock::time_point now);
  void declare_wedged_locked(std::uint32_t id, Watched& w, Clock::time_point now,
                             std::string why);
  void cancel_locked(std::uint32_t id, Watched* w, const std::string& why);
  [[nodiscard]] SessionView view_locked(std::uint32_t id, const Watched& w,
                                        Clock::time_point now) const;

  void on_pong(std::uint32_t session, const net::PingInfo& info);

  static bool write_rows(const std::string& path, const std::vector<SessionView>& rows);

  const LivenessConfig config_;
  const std::chrono::milliseconds interval_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<FrameRouter> src_;
  std::shared_ptr<FrameRouter> dst_;
  std::map<std::uint32_t, Watched> watched_;
  TimerWheel wheel_;
  Clock::time_point last_snapshot_write_;
  bool stopped_ = false;

  std::thread thread_;
};

}  // namespace hpm::mig
