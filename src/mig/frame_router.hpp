// FrameRouter: one shared ByteChannel, N live migration sessions.
//
// Each endpoint of a multiplexed channel owns a router. The router's pump
// thread reads session-tagged (v4) frames off the wire and demultiplexes
// them into per-session queues; open(session_id) hands out a MessagePort
// (port.hpp) bound to that session's CURRENT epoch, so the protocol
// endpoints drive a routed session with exactly the code they use on an
// exclusive channel.
//
// Epochs make resume safe on a channel that never dies: calling open()
// again for a live session bumps its epoch, wakes any receiver still
// blocked on the old port with a NetError (the routed analogue of a
// dropped connection), discards queued frames from the old binding, and
// drops any old-epoch frame still in flight. Without the epoch check, a
// stale StateChunk buffered in the shared channel could splice itself
// into the resumed stream — the byte-level equivalent was impossible
// because a dead channel took its buffer with it.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "mig/port.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"

namespace hpm::mig {

class FrameRouter {
 public:
  /// Takes ownership of one endpoint of the shared channel and starts the
  /// rx pump. `keepalive` rides along for transport plumbing that must
  /// outlive the conversation (e.g. a socket listener).
  explicit FrameRouter(std::unique_ptr<net::ByteChannel> ch,
                       std::shared_ptr<void> keepalive = nullptr);

  FrameRouter(const FrameRouter&) = delete;
  FrameRouter& operator=(const FrameRouter&) = delete;

  ~FrameRouter();

  /// Bind a port to `session_id`'s next epoch. The first open creates the
  /// session; every further open is a resume: the previous epoch's port
  /// is superseded (its blocked recv wakes with NetError, its queued
  /// frames are discarded) and in-flight frames it sent or was owed are
  /// dropped on arrival.
  std::unique_ptr<MessagePort> open(std::uint32_t session_id);

  /// Abort the channel, join the pump, and fail every open port. Called
  /// by the destructor; safe to call early and repeatedly.
  void shutdown();

  /// --- liveness plumbing (SessionSupervisor, DESIGN.md §13) ---------------
  /// Pings ride the shared wire as ordinary v4 frames tagged with the
  /// session's CURRENT epoch; the peer router's pump answers each
  /// live-epoch Ping with a Pong echoing the payload, and Pongs arriving
  /// here go to the registered handler — neither frame ever reaches a
  /// session queue, so the protocol state machines stay liveness-blind.

  /// Probe `session` over its current binding. False (no frame sent) when
  /// the session has no live binding to probe: never opened, closed,
  /// poisoned, shut down, or the channel is already dead.
  bool send_ping(std::uint32_t session, const net::PingInfo& info);

  using PongHandler = std::function<void(std::uint32_t session, const net::PingInfo&)>;
  void set_pong_handler(PongHandler handler);

  /// Targeted cancellation: permanently wound ONE session on this router.
  /// Its queued frames are dropped, a recv parked on it wakes with
  /// CancelledError, and every further send/recv/open for the session
  /// throws CancelledError — sibling sessions on the shared channel are
  /// untouched. Idempotent.
  void poison(std::uint32_t session, std::string reason);

  /// Frames delivered into `session`'s queue since the router started —
  /// the progress watermark the supervisor watches for a stuck session.
  [[nodiscard]] std::uint64_t delivered(std::uint32_t session) const;

  /// Epoch-checked plumbing behind the ports open() hands out. Public
  /// only for them — protocol endpoints talk MessagePort, never this.
  void send_from(std::uint32_t session, std::uint16_t epoch, net::MsgType type,
                 std::span<const std::uint8_t> payload);
  net::Message recv_for(std::uint32_t session, std::uint16_t epoch,
                        std::chrono::milliseconds timeout);
  void close_port(std::uint32_t session, std::uint16_t epoch);

 private:
  struct Entry {
    std::uint16_t epoch = 0;       ///< current binding; lower = stale
    std::deque<net::Message> q;    ///< frames awaiting recv_for
    bool closed = false;           ///< current epoch's port closed itself
    bool poisoned = false;         ///< supervisor-cancelled; every op throws
    std::string poison_reason;
    std::uint64_t delivered = 0;   ///< lifetime frames routed to this session
  };

  void pump();

  std::unique_ptr<net::ByteChannel> ch_;
  std::shared_ptr<void> keepalive_;

  std::mutex tx_mu_;  ///< serializes sends from N session threads

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint32_t, Entry> sessions_;
  PongHandler pong_handler_;
  std::exception_ptr error_;  ///< terminal channel failure, rethrown to all
  bool shutdown_ = false;

  obs::Counter& routed_;
  obs::Counter& dropped_;
  obs::Counter& reopens_;

  std::thread thread_;
};

}  // namespace hpm::mig
