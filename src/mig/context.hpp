// MigContext: the per-process migration runtime.
//
// A migratable program is written against this context using the macros
// in annotate.hpp (the artifacts the paper's pre-compiler would insert):
// every migratable function opens a frame, registers its live locals,
// wraps its body in a resume switch, and polls at chosen points. At a
// poll-point where a migration request is pending the context collects
// the execution state and all live data (innermost frame first, exactly
// the paper's order), seals the stream, and unwinds the program with
// MigrationExit. On the destination, begin_restore() parses the stream,
// the same program re-executes its prologues as a skeleton down to the
// migration point, and finish-restoration decodes every block in place
// before normal execution resumes.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>

#include "common/error.hpp"
#include "mig/frame.hpp"
#include "msr/host_space.hpp"
#include "msrm/collect.hpp"
#include "msrm/restore.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "ti/describe.hpp"

namespace hpm::mig {

class ChunkAssembler;

/// Thrown by a poll-point after collection succeeds; unwinds the source
/// program so the process can "terminate" (paper §2). Deliberately not
/// derived from hpm::Error: it is control flow, not a failure.
struct MigrationExit {
  std::uint32_t migration_point = 0;
};

enum class Mode : std::uint8_t { Normal, Restoring };

/// Timing and volume measurements of one migration (Table 1 columns).
/// The two phase timings are span-derived: collect_seconds is the
/// `mig.collect` span, restore_seconds the `mig.restore` span
/// (begin_restore through the migration poll-point).
struct MigrationMetrics {
  double collect_seconds = 0;
  double restore_seconds = 0;
  std::uint64_t stream_bytes = 0;
  /// Tracked blocks at the migration point; blocks NOT reachable from any
  /// live variable (tracked_blocks - blocks saved) stay behind — the
  /// pre-compiler's live-variable analysis made manifest.
  std::uint64_t tracked_blocks = 0;
  /// Registry deltas across the two phases, so every `msrm.collect.*` /
  /// `msrm.restore.*` instrument of this migration is one lookup away
  /// (e.g. collect.counter("msrm.collect.blocks_saved")). Instruments are
  /// process-wide: a phase overlapping other registry activity (the
  /// pipelined transfer) sees that activity under its other names too.
  obs::MetricsSnapshot collect;
  obs::MetricsSnapshot restore;

  [[nodiscard]] std::uint64_t dead_blocks() const {
    return tracked_blocks - collect.counter("msrm.collect.blocks_saved");
  }
};

class MigContext {
 public:
  explicit MigContext(ti::TypeTable& types,
                      msr::SearchStrategy strategy = msr::SearchStrategy::OrderedMap)
      : types_(&types), space_(types, strategy) {}

  ~MigContext();

  MigContext(const MigContext&) = delete;
  MigContext& operator=(const MigContext&) = delete;

  /// --- program-construction API -----------------------------------------

  /// Per-context "global variable" storage (zero-initialized), registered
  /// in the Global segment. Must be created before the first frame is
  /// entered, in the same order on source and destination.
  template <typename T>
  T& global(const char* name) {
    return *static_cast<T*>(make_global(name, ti::native_type_id<T>(*types_), 1));
  }
  template <typename T>
  T* global_array(const char* name, std::uint32_t count) {
    return static_cast<T*>(make_global(name, ti::native_type_id<T>(*types_), count));
  }

  /// Migratable heap (the paper's instrumented malloc): allocates zeroed
  /// storage, registers the block. Every allocation is one MSR heap node.
  template <typename T>
  T* heap_alloc(std::uint32_t count = 1, const char* name = "") {
    return static_cast<T*>(heap_alloc_raw(ti::native_type_id<T>(*types_), count, name));
  }

  /// Free a heap_alloc'd (or restored) block: unregisters and releases.
  void heap_free(void* p);

  /// --- annotation hooks (called via the HPM_* macros) --------------------
  void enter_frame(Frame& frame);
  void leave_frame(Frame& frame);

  template <typename T>
  void local(Frame& frame, const char* name, T& var) {
    add_local(frame, name, &var, ti::native_type_id<T>(*types_), 1);
  }
  template <typename T>
  void local_array(Frame& frame, const char* name, T* base, std::uint32_t count) {
    add_local(frame, name, base, ti::native_type_id<T>(*types_), count);
  }

  /// Resume label for a frame: 0 in normal execution (enter at the top),
  /// the saved label while restoring.
  std::uint32_t resume_point(const Frame& frame) const noexcept {
    return frame.restore_from != nullptr ? frame.restore_from->resume_point : 0;
  }

  /// Record passing a call-site label (so the frame resumes there if a
  /// migration happens deeper in the call).
  void at_callsite(Frame& frame, std::uint32_t label) noexcept {
    frame.current_point = label;
  }

  /// Poll-point: the paper's inserted macro. In normal mode, checks for a
  /// pending migration request and, if one is due, collects and throws
  /// MigrationExit. In restore mode, this must be the migration point:
  /// completes data restoration and switches to normal mode.
  void poll(Frame& frame, std::uint32_t label);

  /// --- migration control --------------------------------------------------
  /// Asynchronous request (what the paper's scheduler sends).
  void request_migration() noexcept { requested_.store(true, std::memory_order_relaxed); }

  /// Deterministic trigger: migrate at the Nth executed poll (1-based).
  void set_migrate_at_poll(std::uint64_t n) noexcept { migrate_at_poll_ = n; }

  /// Benchmark hook: unwind with MigrationExit as soon as restoration
  /// completes (metrics are already recorded), instead of running the
  /// program tail. Lets a harness time Restore without paying for the
  /// remaining computation.
  void set_stop_after_restore(bool stop) noexcept { stop_after_restore_ = stop; }

  /// Observer invoked at every poll-point (normal mode, before the
  /// migration-request check). Used by periodic checkpointers; the
  /// observer may inspect the context but must not migrate or unwind.
  void set_poll_observer(std::function<void(MigContext&)> observer) {
    poll_observer_ = std::move(observer);
  }

  /// Snapshot of the current execution state (frames outermost-first,
  /// then globals) — exactly what a migration stream would carry.
  [[nodiscard]] ExecutionState snapshot_execution_state() const;

  [[nodiscard]] std::uint64_t poll_count() const noexcept { return poll_count_; }

  /// Stream produced by the last collection (valid after MigrationExit).
  [[nodiscard]] const Bytes& stream() const noexcept { return stream_; }

  /// End-to-end digest (msrm::StreamDigest) of the last collected stream,
  /// accumulated chunk-by-chunk as collection streams through the sink.
  /// Carried in StateEnd and re-verified on the destination before it may
  /// vote in the commit phase.
  [[nodiscard]] std::uint64_t stream_digest() const noexcept { return collect_digest_; }

  /// Pipelined collection: stream the encoded state through `sink` in
  /// `chunk_bytes` slices while the collection DFS is still walking the
  /// graph. Install before the program starts. The full stream is still
  /// retained (stream()) so a failed transfer can be retried serially.
  void set_collect_sink(std::size_t chunk_bytes, xdr::Encoder::SinkFn sink);

  /// Worker threads for the collection DFS (msrm::collect_roots). 1 =
  /// serial (default); >1 partitions the root set and merges per-root
  /// streams in rank order, bit-identical to serial.
  void set_collect_threads(unsigned n) noexcept { collect_threads_ = n == 0 ? 1 : n; }
  [[nodiscard]] unsigned collect_threads() const noexcept { return collect_threads_; }

  /// --- restoration --------------------------------------------------------
  /// Parse and validate a migration stream; the caller then re-runs the
  /// program entry, which restores and continues to completion.
  void begin_restore(Bytes stream);

  /// Streaming variant: decode the stream incrementally as chunks land in
  /// `assembler` (which must outlive restoration). Blocks whenever the
  /// decoder outruns the network. End-to-end checks (digest, trailer CRC,
  /// byte totals) run once the stream completes, at the migration
  /// poll-point.
  void begin_restore_streaming(ChunkAssembler& assembler);

  /// Transactional handoff hook, streaming restores only: invoked at the
  /// migration poll-point AFTER every restoration check (including the
  /// end-to-end digest comparison) passed, with the digest this side
  /// computed. The coordinator's gate runs the Prepare/Commit exchange
  /// there; a throw unwinds the program before the restored process ever
  /// executes its tail — the destination must not run what it does not
  /// yet own.
  void set_commit_gate(std::function<void(std::uint64_t digest)> gate) {
    commit_gate_ = std::move(gate);
  }

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] bool restoring() const noexcept { return mode_ == Mode::Restoring; }

  /// --- introspection -------------------------------------------------------
  msr::HostSpace& space() noexcept { return space_; }
  ti::TypeTable& types() noexcept { return *types_; }
  [[nodiscard]] const MigrationMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::size_t frame_depth() const noexcept { return frames_.size(); }
  [[nodiscard]] std::size_t live_heap_blocks() const noexcept { return heap_owned_.size(); }

 private:
  void* make_global(const char* name, ti::TypeId type, std::uint32_t count);
  void* heap_alloc_raw(ti::TypeId type, std::uint32_t count, const char* name);
  void add_local(Frame& frame, const char* name, void* addr, ti::TypeId type,
                 std::uint32_t count);
  void do_migration(std::uint32_t label);
  void restore_from_decoder();
  void finish_restore(Frame& frame, std::uint32_t label);
  void bind_saved(const SavedVar& saved, const LocalVar& dest);

  ti::TypeTable* types_;
  msr::HostSpace space_;

  std::vector<Frame*> frames_;
  std::vector<LocalVar> globals_;
  std::unordered_set<void*> heap_owned_;

  std::atomic<bool> requested_{false};
  std::uint64_t migrate_at_poll_ = 0;
  bool stop_after_restore_ = false;
  std::function<void(MigContext&)> poll_observer_;
  std::uint64_t poll_count_ = 0;

  Mode mode_ = Mode::Normal;
  Bytes stream_;
  unsigned collect_threads_ = 1;
  std::size_t collect_chunk_ = 0;
  xdr::Encoder::SinkFn collect_sink_;
  std::uint64_t collect_digest_ = 0;
  std::function<void(std::uint64_t)> commit_gate_;

  // Restore-side state.
  ChunkAssembler* assembler_ = nullptr;  ///< non-null while restoring a chunked stream
  obs::MetricsSnapshot restore_before_;
  Bytes restore_stream_;
  std::optional<xdr::Decoder> dec_;
  std::unique_ptr<msrm::Restorer> restorer_;
  ExecutionState exec_;
  std::uint64_t header_signature_ = 0;
  std::size_t restore_depth_ = 0;     ///< frames entered while restoring
  std::size_t globals_bound_ = 0;
  /// `mig.restore` span: opened by begin_restore, closed when the
  /// skeleton re-execution reaches the migration poll-point. Must open
  /// and close on the same (destination) thread.
  std::unique_ptr<obs::Span> restore_span_;

  MigrationMetrics metrics_;
};

}  // namespace hpm::mig
