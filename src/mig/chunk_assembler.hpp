// ChunkAssembler: destination-side reassembly for the pipelined transfer.
//
// The coordinator's rx thread appends StateChunk payloads as they arrive;
// the restoring thread pulls newly available bytes into its own buffer
// (the decoder's backing store) through fetch(). The two sides never
// share a mutable buffer: the producer writes only the assembler's
// internal vector, the consumer copies out of it under the lock — so the
// design is clean under TSan by construction, not by annotation.
//
// Any producer-side failure (frame CRC mismatch, sequence violation,
// hostile StateEnd totals) poisons the assembler; the consumer's next
// fetch() rethrows it as a NetError, which the coordinator turns into a
// Nack — one retryable failure, never a hang. Sequence and totals
// violations throw the typed hpm::ProtocolError on the producer side
// too, so the rx loop can distinguish a hostile/buggy peer from a
// damaged link.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/hexdump.hpp"
#include "mig/chunk_store.hpp"
#include "net/message.hpp"

namespace hpm::mig {

class ChunkAssembler {
 public:
  /// `chunk_bytes_hint` is the StateBegin-announced chunk size. The
  /// assembly buffer is reserved ahead in multi-chunk strides of it, so
  /// appending a chunk reuses the same backing store instead of paying a
  /// reallocation (and the copy of everything assembled so far) per
  /// StateChunk — the alloc churn that used to show up against
  /// `mig.pipeline.*` chunk rates. 0 = no hint; growth is still geometric.
  explicit ChunkAssembler(std::uint32_t chunk_bytes_hint = 0)
      : chunk_hint_(chunk_bytes_hint) {}

  /// --- producer side (rx thread) -----------------------------------------

  /// Append one chunk's bytes. Chunks must arrive in exact sequence order
  /// (the channel is ordered; a gap means a dropped frame, a duplicate a
  /// replayed one). Any violation — including a chunk after StateEnd —
  /// poisons the assembler and throws hpm::ProtocolError. In manifest
  /// mode, "next expected" skips over indices spliced from the store, so
  /// wire chunks carry only the negotiated misses — and after
  /// mark_resumed(), any not-yet-assembled index, hit or miss.
  void append(std::uint32_t seq, std::span<const std::uint8_t> bytes);

  /// --- dedup manifest mode -------------------------------------------------

  /// Arm manifest mode with the source's ordered chunk address list.
  /// Every address the store can produce (digest-verified load — a
  /// corrupted entry silently degrades to a miss and is unlinked) is held
  /// for local splicing; the returned ascending index list is the miss
  /// set the destination must request over the wire. Leading hits are
  /// spliced immediately; later ones as the wire fills the gaps before
  /// them. Must be called before any append; may be called only once.
  std::vector<std::uint32_t> begin_manifest(const std::vector<ChunkAddr>& addrs,
                                            ChunkStore& store);

  /// A link failure re-opened the stream: the source will retransmit
  /// every chunk from the destination's watermark raw, including former
  /// cache hits, so stop splicing and accept them all from the wire.
  void mark_resumed();

  /// Orderly end of stream: verifies the chunk count and byte total
  /// against what actually arrived and retains `info` (its end-to-end
  /// digest is checked by the restoring context, not here — transport
  /// validates structure, msrm validates content). A mismatch or a
  /// second StateEnd poisons the assembler instead of completing it.
  void finish(const net::StateEndInfo& info);

  /// Poison the assembler: every waiting or future consumer call throws
  /// NetError(reason).
  void fail(std::string reason);

  /// --- consumer side (restore thread) ------------------------------------

  /// Append to `out` (which must hold a prefix of the stream) every byte
  /// beyond out.size(), blocking until at least `min_total` bytes exist
  /// or the stream completes. Returns true if `out` grew, false when the
  /// stream is complete and exhausted. Throws hpm::NetError if poisoned.
  bool fetch(Bytes& out, std::size_t min_total);

  /// Block until finish() or fail(); returns the total byte count on
  /// success, throws hpm::NetError on failure.
  std::uint64_t await_complete();

  [[nodiscard]] std::uint32_t chunks_received() const;

  /// The StateEnd that completed the stream (valid once await_complete()
  /// returned): carries the source's end-to-end digest.
  [[nodiscard]] net::StateEndInfo end_info() const;

  /// How many times the assembly buffer's backing store was regrown.
  /// The invariant (asserted by the unit test): O(log chunks), never
  /// O(chunks) — appending must reuse the scratch buffer, not reallocate
  /// per StateChunk.
  [[nodiscard]] std::uint64_t alloc_growths() const;

 private:
  void fail_locked(std::string reason);
  void reserve_for_locked(std::size_t incoming);
  void splice_pending_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Bytes data_;
  std::uint32_t chunk_hint_ = 0;
  std::uint64_t growths_ = 0;
  net::StateEndInfo end_;
  std::uint32_t chunks_ = 0;
  bool complete_ = false;
  bool failed_ = false;
  std::string reason_;

  // Manifest mode: cache-hit bodies waiting for the assembly prefix to
  // reach their index. `pending_have_[i]` marks a held hit; the body is
  // released as soon as it is spliced (or superseded by a raw resume
  // retransmit) so peak memory stays one stream, not two.
  bool manifest_mode_ = false;
  bool splice_enabled_ = true;
  std::vector<Bytes> pending_;
  std::vector<bool> pending_have_;
};

}  // namespace hpm::mig
