// Per-architecture layout computation.
//
// Given a TypeTable and an ArchDescriptor, LayoutMap computes the concrete
// size, alignment, and field offsets of every type under that platform's
// natural-alignment rules — the "machine-specific format" for that
// architecture. The same table therefore yields different byte layouts on
// dec5000_ultrix (ILP32 LE), sparc20_solaris (ILP32 BE), i386 (4-byte
// double alignment), and the native host; conversion between them is what
// the collection/restoration engine performs.
#pragma once

#include <cstdint>
#include <vector>

#include "ti/table.hpp"
#include "xdr/arch.hpp"

namespace hpm::ti {

/// Concrete layout of one type on one architecture.
struct TypeLayout {
  std::uint64_t size = 0;
  std::uint32_t align = 1;
  /// Byte offset of each struct field (empty for non-structs).
  std::vector<std::uint64_t> field_offsets;
};

/// Lazy cache of TypeLayouts for one (table, arch) pair.
///
/// The table must outlive the map and must not gain *redefinitions* of
/// types already laid out (appending new types is fine).
class LayoutMap {
 public:
  LayoutMap(const TypeTable& table, const xdr::ArchDescriptor& arch)
      : table_(&table), arch_(&arch) {}

  /// Layout of `id`; computed on first use. Throws hpm::TypeError for
  /// undefined structs.
  const TypeLayout& of(TypeId id) const;

  [[nodiscard]] const TypeTable& table() const noexcept { return *table_; }
  [[nodiscard]] const xdr::ArchDescriptor& arch() const noexcept { return *arch_; }

 private:
  const TypeLayout& compute(TypeId id) const;

  const TypeTable* table_;
  const xdr::ArchDescriptor* arch_;
  mutable std::vector<TypeLayout> cache_;
  mutable std::vector<std::uint8_t> ready_;
};

/// Round `offset` up to a multiple of `align` (align is a power of two in
/// every supported data model, but the implementation does not assume it).
constexpr std::uint64_t align_up(std::uint64_t offset, std::uint64_t align) {
  return align == 0 ? offset : ((offset + align - 1) / align) * align;
}

}  // namespace hpm::ti
