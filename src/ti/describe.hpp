// Native C++ registration helpers — the hand-written stand-in for the
// paper's pre-compiler output.
//
// The paper's source-to-source transformer emits, for every program type,
// a TI-table entry plus saving/restoring functions. In this library the
// application registers its types once at startup:
//
//   struct Node { float data; Node* link; };
//   ti::StructBuilder<Node> b(table, "node");
//   HPM_TI_FIELD(b, Node, data);
//   HPM_TI_FIELD(b, Node, link);
//   b.commit();
//
// commit() cross-checks the layout engine against the real compiler
// layout (sizeof / offsetof), so any padding or alignment surprise is a
// hard error at registration time instead of silent corruption at
// migration time.
#pragma once

#include <cstddef>
#include <type_traits>
#include <typeindex>

#include "ti/layout.hpp"
#include "ti/table.hpp"

namespace hpm::ti {

/// Map a C++ type to its TypeId, interning pointer/array shells on demand.
/// Class types must have been registered through StructBuilder first.
template <typename T>
TypeId native_type_id(TypeTable& table) {
  using U = std::remove_cv_t<T>;
  if constexpr (std::is_same_v<U, bool>) {
    return table.primitive(xdr::PrimKind::Bool);
  } else if constexpr (std::is_same_v<U, char>) {
    return table.primitive(xdr::PrimKind::Char);
  } else if constexpr (std::is_same_v<U, signed char>) {
    return table.primitive(xdr::PrimKind::SChar);
  } else if constexpr (std::is_same_v<U, unsigned char>) {
    return table.primitive(xdr::PrimKind::UChar);
  } else if constexpr (std::is_same_v<U, short>) {
    return table.primitive(xdr::PrimKind::Short);
  } else if constexpr (std::is_same_v<U, unsigned short>) {
    return table.primitive(xdr::PrimKind::UShort);
  } else if constexpr (std::is_same_v<U, int>) {
    return table.primitive(xdr::PrimKind::Int);
  } else if constexpr (std::is_same_v<U, unsigned int>) {
    return table.primitive(xdr::PrimKind::UInt);
  } else if constexpr (std::is_same_v<U, long>) {
    return table.primitive(xdr::PrimKind::Long);
  } else if constexpr (std::is_same_v<U, unsigned long>) {
    return table.primitive(xdr::PrimKind::ULong);
  } else if constexpr (std::is_same_v<U, long long>) {
    return table.primitive(xdr::PrimKind::LongLong);
  } else if constexpr (std::is_same_v<U, unsigned long long>) {
    return table.primitive(xdr::PrimKind::ULongLong);
  } else if constexpr (std::is_same_v<U, float>) {
    return table.primitive(xdr::PrimKind::Float);
  } else if constexpr (std::is_same_v<U, double>) {
    return table.primitive(xdr::PrimKind::Double);
  } else if constexpr (std::is_pointer_v<U>) {
    return table.intern_pointer(native_type_id<std::remove_pointer_t<U>>(table));
  } else if constexpr (std::is_bounded_array_v<U>) {
    return table.intern_array(native_type_id<std::remove_extent_t<U>>(table),
                              static_cast<std::uint32_t>(std::extent_v<U>));
  } else if constexpr (std::is_class_v<U>) {
    const TypeId id = table.native(std::type_index(typeid(U)));
    if (id == kInvalidType) {
      throw TypeError(std::string("native class type not registered: ") + typeid(U).name());
    }
    return id;
  } else {
    static_assert(!sizeof(U*), "type has no TI-table mapping (migration-unsafe?)");
  }
}

/// Fluent registration of a standard-layout struct; see file comment.
template <typename T>
class StructBuilder {
  static_assert(std::is_standard_layout_v<T>,
                "only standard-layout structs are migration-safe");

 public:
  StructBuilder(TypeTable& table, std::string name) : table_(&table) {
    id_ = table.declare_struct(name);
    table.bind_native(std::type_index(typeid(T)), id_);
  }

  /// Register a field with an explicit type id.
  StructBuilder& field(std::string name, std::size_t offset, TypeId type) {
    fields_.push_back(Field{std::move(name), type});
    offsets_.push_back(offset);
    return *this;
  }

  /// Register a field whose type is deduced from the member's C++ type.
  template <typename M>
  StructBuilder& field(std::string name, std::size_t offset) {
    return field(std::move(name), offset, native_type_id<M>(*table_));
  }

  /// Finish the definition and validate against the compiler's layout.
  TypeId commit() {
    table_->define_struct(id_, fields_);
    const LayoutMap native(*table_, xdr::native_arch());
    const TypeLayout& computed = native.of(id_);
    if (computed.size != sizeof(T)) {
      throw TypeError("layout mismatch for '" + table_->at(id_).name + "': engine size " +
                      std::to_string(computed.size) + " vs sizeof " +
                      std::to_string(sizeof(T)) +
                      " (non-natural padding is migration-unsafe)");
    }
    for (std::size_t i = 0; i < offsets_.size(); ++i) {
      if (computed.field_offsets[i] != offsets_[i]) {
        throw TypeError("offset mismatch for field '" + fields_[i].name + "' of '" +
                        table_->at(id_).name + "': engine " +
                        std::to_string(computed.field_offsets[i]) + " vs offsetof " +
                        std::to_string(offsets_[i]));
      }
    }
    return id_;
  }

  [[nodiscard]] TypeId id() const noexcept { return id_; }

 private:
  TypeTable* table_;
  TypeId id_ = kInvalidType;
  std::vector<Field> fields_;
  std::vector<std::size_t> offsets_;
};

/// Register one member: HPM_TI_FIELD(builder, Node, link);
#define HPM_TI_FIELD(builder, Struct, member) \
  (builder).template field<decltype(Struct::member)>(#member, offsetof(Struct, member))

}  // namespace hpm::ti
