#include "ti/leaf.hpp"

namespace hpm::ti {

std::uint64_t LeafIndex::count(TypeId id) const {
  table_->at(id);
  if (memo_.size() < table_->size()) memo_.resize(table_->size(), 0);
  if (memo_[id - 1] != 0) return memo_[id - 1];
  const TypeInfo& info = table_->at(id);
  std::uint64_t n = 0;
  switch (info.kind) {
    case TypeKind::Primitive:
    case TypeKind::Pointer:
      n = 1;
      break;
    case TypeKind::Array:
      n = count(info.elem) * info.count;
      break;
    case TypeKind::Struct:
      if (!info.defined) {
        throw TypeError("leaf count of undefined struct '" + info.name + "'");
      }
      for (const Field& f : info.fields) n += count(f.type);
      break;
  }
  if (memo_.size() < table_->size()) memo_.resize(table_->size(), 0);
  memo_[id - 1] = n;
  return n;
}

LeafRef leaf_at(const LeafIndex& leaves, const LayoutMap& layouts, TypeId id,
                std::uint64_t ordinal) {
  const TypeTable& table = leaves.table();
  std::uint64_t offset = 0;
  TypeId cur = id;
  for (;;) {
    const TypeInfo& info = table.at(cur);
    switch (info.kind) {
      case TypeKind::Primitive: {
        if (ordinal != 0) throw TypeError("leaf ordinal out of range");
        LeafRef ref;
        ref.is_pointer = false;
        ref.prim = info.prim;
        ref.type = cur;
        ref.byte_offset = offset;
        return ref;
      }
      case TypeKind::Pointer: {
        if (ordinal != 0) throw TypeError("leaf ordinal out of range");
        LeafRef ref;
        ref.is_pointer = true;
        ref.type = cur;
        ref.byte_offset = offset;
        return ref;
      }
      case TypeKind::Array: {
        const std::uint64_t per = leaves.count(info.elem);
        const std::uint64_t idx = ordinal / per;
        if (idx >= info.count) throw TypeError("leaf ordinal out of range");
        offset += idx * layouts.of(info.elem).size;
        ordinal -= idx * per;
        cur = info.elem;
        break;
      }
      case TypeKind::Struct: {
        const TypeLayout& sl = layouts.of(cur);
        bool found = false;
        for (std::size_t i = 0; i < info.fields.size(); ++i) {
          const std::uint64_t n = leaves.count(info.fields[i].type);
          if (ordinal < n) {
            offset += sl.field_offsets[i];
            cur = info.fields[i].type;
            found = true;
            break;
          }
          ordinal -= n;
        }
        if (!found) throw TypeError("leaf ordinal out of range");
        break;
      }
    }
  }
}

std::uint64_t ordinal_of(const LeafIndex& leaves, const LayoutMap& layouts, TypeId id,
                         std::uint64_t byte_offset) {
  const TypeTable& table = leaves.table();
  std::uint64_t ordinal = 0;
  TypeId cur = id;
  for (;;) {
    const TypeInfo& info = table.at(cur);
    switch (info.kind) {
      case TypeKind::Primitive:
      case TypeKind::Pointer:
        if (byte_offset != 0) {
          throw TypeError("address does not fall on a data element boundary");
        }
        return ordinal;
      case TypeKind::Array: {
        const std::uint64_t elem_size = layouts.of(info.elem).size;
        const std::uint64_t idx = byte_offset / elem_size;
        if (idx >= info.count) throw TypeError("address beyond end of array");
        ordinal += idx * leaves.count(info.elem);
        byte_offset -= idx * elem_size;
        cur = info.elem;
        break;
      }
      case TypeKind::Struct: {
        const TypeLayout& sl = layouts.of(cur);
        bool found = false;
        for (std::size_t i = 0; i < info.fields.size(); ++i) {
          const std::uint64_t start = sl.field_offsets[i];
          const std::uint64_t size = layouts.of(info.fields[i].type).size;
          if (byte_offset >= start && byte_offset < start + size) {
            byte_offset -= start;
            cur = info.fields[i].type;
            found = true;
            break;
          }
          ordinal += leaves.count(info.fields[i].type);
        }
        if (!found) throw TypeError("address falls in struct padding");
        break;
      }
    }
  }
}

}  // namespace hpm::ti
