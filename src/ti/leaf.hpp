// Leaf model: the ordered primitive/pointer elements of a type.
//
// The paper encodes a pointer as (pointer header, offset) where the offset
// is "the ordering number of the data elements inside the memory block".
// We realize that as the *leaf ordinal*: flatten a type depth-first into
// its primitive and pointer cells; the ordinal of a cell is stable across
// architectures even though its byte offset is not. Collection converts a
// referenced byte address to (block, ordinal); restoration converts the
// ordinal back to a byte address under the destination layout.
#pragma once

#include <cstdint>
#include <vector>

#include "ti/layout.hpp"
#include "ti/table.hpp"

namespace hpm::ti {

/// One leaf cell of a type instance.
struct LeafRef {
  bool is_pointer = false;
  xdr::PrimKind prim = xdr::PrimKind::Int;  ///< meaningful when !is_pointer
  TypeId type = kInvalidType;               ///< the leaf's own type id
  std::uint64_t byte_offset = 0;            ///< from the instance base, per the LayoutMap's arch
};

/// Cached leaf counts for a TypeTable (arch-independent).
class LeafIndex {
 public:
  explicit LeafIndex(const TypeTable& table) : table_(&table) {}

  /// Number of leaves in a single value of `id`.
  std::uint64_t count(TypeId id) const;

  [[nodiscard]] const TypeTable& table() const noexcept { return *table_; }

 private:
  const TypeTable* table_;
  mutable std::vector<std::uint64_t> memo_;  // 0 = not computed (no type has 0 leaves)
};

/// Resolve leaf `ordinal` (0-based, within one value of `id`) to its kind
/// and byte offset under `layouts`. Throws hpm::TypeError if out of range.
LeafRef leaf_at(const LeafIndex& leaves, const LayoutMap& layouts, TypeId id,
                std::uint64_t ordinal);

/// Inverse: which leaf starts exactly at `byte_offset` inside a value of
/// `id`? Throws hpm::TypeError if the offset is padding or mid-leaf —
/// i.e. the pointer did not address a data element, which the MSR model
/// treats as a hard error.
std::uint64_t ordinal_of(const LeafIndex& leaves, const LayoutMap& layouts, TypeId id,
                         std::uint64_t byte_offset);

/// Visit every leaf of one value of `id` in ordinal order.
/// `fn(const LeafRef&)` is invoked with offsets relative to the value base.
template <typename Fn>
void for_each_leaf(const LeafIndex& leaves, const LayoutMap& layouts, TypeId id, Fn&& fn,
                   std::uint64_t base_offset = 0) {
  const TypeInfo& info = leaves.table().at(id);
  switch (info.kind) {
    case TypeKind::Primitive: {
      LeafRef ref;
      ref.is_pointer = false;
      ref.prim = info.prim;
      ref.type = id;
      ref.byte_offset = base_offset;
      fn(static_cast<const LeafRef&>(ref));
      return;
    }
    case TypeKind::Pointer: {
      LeafRef ref;
      ref.is_pointer = true;
      ref.type = id;
      ref.byte_offset = base_offset;
      fn(static_cast<const LeafRef&>(ref));
      return;
    }
    case TypeKind::Array: {
      const std::uint64_t elem_size = layouts.of(info.elem).size;
      for (std::uint32_t i = 0; i < info.count; ++i) {
        for_each_leaf(leaves, layouts, info.elem, fn, base_offset + i * elem_size);
      }
      return;
    }
    case TypeKind::Struct: {
      const TypeLayout& sl = layouts.of(id);
      for (std::size_t i = 0; i < info.fields.size(); ++i) {
        for_each_leaf(leaves, layouts, info.fields[i].type, fn,
                      base_offset + sl.field_offsets[i]);
      }
      return;
    }
  }
}

}  // namespace hpm::ti
