#include "ti/table.hpp"

#include <functional>

namespace hpm::ti {

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

TypeTable::TypeTable() {
  // Primitives occupy ids 1..kNumPrimKinds in PrimKind order.
  for (std::size_t i = 0; i < xdr::kNumPrimKinds; ++i) {
    TypeInfo info;
    info.kind = TypeKind::Primitive;
    info.prim = static_cast<xdr::PrimKind>(i);
    info.name = std::string(xdr::prim_name(info.prim));
    add(std::move(info));
  }
}

TypeId TypeTable::add(TypeInfo info) {
  types_.push_back(std::move(info));
  ptr_memo_.push_back(-1);
  bulk_memo_.push_back(-1);
  return static_cast<TypeId>(types_.size());
}

const TypeInfo& TypeTable::at(TypeId id) const {
  if (id == kInvalidType || id > types_.size()) {
    throw TypeError("invalid type id " + std::to_string(id));
  }
  return types_[id - 1];
}

TypeId TypeTable::intern_pointer(TypeId pointee) {
  at(pointee);  // validate
  const auto it = pointer_cache_.find(pointee);
  if (it != pointer_cache_.end()) return it->second;
  TypeInfo info;
  info.kind = TypeKind::Pointer;
  info.pointee = pointee;
  const TypeId id = add(std::move(info));
  pointer_cache_.emplace(pointee, id);
  return id;
}

TypeId TypeTable::intern_array(TypeId elem, std::uint32_t count) {
  at(elem);
  if (count == 0) throw TypeError("array type must have count > 0");
  const std::uint64_t key = (static_cast<std::uint64_t>(elem) << 32) | count;
  const auto it = array_cache_.find(key);
  if (it != array_cache_.end()) return it->second;
  TypeInfo info;
  info.kind = TypeKind::Array;
  info.elem = elem;
  info.count = count;
  const TypeId id = add(std::move(info));
  array_cache_.emplace(key, id);
  return id;
}

TypeId TypeTable::declare_struct(const std::string& name) {
  const auto it = struct_names_.find(name);
  if (it != struct_names_.end()) return it->second;
  TypeInfo info;
  info.kind = TypeKind::Struct;
  info.name = name;
  info.defined = false;
  const TypeId id = add(std::move(info));
  struct_names_.emplace(name, id);
  return id;
}

void TypeTable::check_no_value_cycle(TypeId root) const {
  // DFS through by-value containment (arrays and struct fields; pointers
  // break the chain). Seeing `root` again means infinite size.
  std::vector<TypeId> stack;
  std::vector<bool> seen(types_.size() + 1, false);
  stack.push_back(root);
  bool first = true;
  while (!stack.empty()) {
    const TypeId id = stack.back();
    stack.pop_back();
    if (!first) {
      if (id == root) {
        throw TypeError("struct '" + at(root).name + "' contains itself by value");
      }
      if (seen[id]) continue;
      seen[id] = true;
    }
    first = false;
    const TypeInfo& info = at(id);
    switch (info.kind) {
      case TypeKind::Struct:
        if (info.defined || id == root) {
          for (const Field& f : info.fields) stack.push_back(f.type);
        }
        break;
      case TypeKind::Array:
        stack.push_back(info.elem);
        break;
      default:
        break;
    }
  }
}

void TypeTable::define_struct(TypeId id, std::vector<Field> fields) {
  if (id == kInvalidType || id > types_.size()) {
    throw TypeError("define_struct: invalid id " + std::to_string(id));
  }
  TypeInfo& info = types_[id - 1];
  if (info.kind != TypeKind::Struct) throw TypeError("define_struct on a non-struct type");
  if (info.defined) throw TypeError("struct '" + info.name + "' already defined");
  if (fields.empty()) throw TypeError("struct '" + info.name + "' must have fields");
  for (const Field& f : fields) static_cast<void>(at(f.type));
  info.fields = std::move(fields);
  info.defined = true;
  check_no_value_cycle(id);
  // Definitions can change pointer-reachability answers computed earlier.
  std::fill(ptr_memo_.begin(), ptr_memo_.end(), std::int8_t{-1});
  std::fill(bulk_memo_.begin(), bulk_memo_.end(), std::int8_t{-1});
}

TypeId TypeTable::find_struct(const std::string& name) const {
  const auto it = struct_names_.find(name);
  return it == struct_names_.end() ? kInvalidType : it->second;
}

std::string TypeTable::spell(TypeId id) const {
  const TypeInfo& info = at(id);
  switch (info.kind) {
    case TypeKind::Primitive:
      return info.name;
    case TypeKind::Pointer:
      return spell(info.pointee) + " *";
    case TypeKind::Array:
      return spell(info.elem) + "[" + std::to_string(info.count) + "]";
    case TypeKind::Struct:
      return "struct " + info.name;
  }
  return "?";
}

bool TypeTable::contains_pointer(TypeId id) const {
  const TypeInfo& info = at(id);
  std::int8_t& memo = ptr_memo_[id - 1];
  if (memo >= 0) return memo != 0;
  memo = 0;  // break field cycles pessimistically; fixed below if true
  bool result = false;
  switch (info.kind) {
    case TypeKind::Primitive:
      result = false;
      break;
    case TypeKind::Pointer:
      result = true;
      break;
    case TypeKind::Array:
      result = contains_pointer(info.elem);
      break;
    case TypeKind::Struct:
      if (!info.defined) throw TypeError("struct '" + info.name + "' used before definition");
      for (const Field& f : info.fields) {
        if (contains_pointer(f.type)) {
          result = true;
          break;
        }
      }
      break;
  }
  memo = result ? 1 : 0;
  return result;
}

bool TypeTable::bulk_eligible(TypeId id) const {
  static_cast<void>(at(id));  // validate
  std::int8_t& memo = bulk_memo_[id - 1];
  if (memo < 0) memo = contains_pointer(id) ? 0 : 1;
  return memo != 0;
}

std::uint64_t TypeTable::signature() const {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    const TypeInfo& t = types_[i];
    h = fnv1a(h, static_cast<std::uint64_t>(t.kind));
    switch (t.kind) {
      case TypeKind::Primitive:
        h = fnv1a(h, static_cast<std::uint64_t>(t.prim));
        break;
      case TypeKind::Pointer:
        h = fnv1a(h, t.pointee);
        break;
      case TypeKind::Array:
        h = fnv1a(h, (static_cast<std::uint64_t>(t.elem) << 32) | t.count);
        break;
      case TypeKind::Struct:
        h = fnv1a_str(h, t.name);
        h = fnv1a(h, t.fields.size());
        for (const Field& f : t.fields) {
          h = fnv1a_str(h, f.name);
          h = fnv1a(h, f.type);
        }
        break;
    }
  }
  return h;
}

void TypeTable::encode(xdr::Encoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(types_.size()));
  for (std::size_t i = xdr::kNumPrimKinds; i < types_.size(); ++i) {
    const TypeInfo& t = types_[i];
    enc.put_u8(static_cast<std::uint8_t>(t.kind));
    switch (t.kind) {
      case TypeKind::Primitive:
        throw TypeError("primitive type outside the reserved range");
      case TypeKind::Pointer:
        enc.put_u32(t.pointee);
        break;
      case TypeKind::Array:
        enc.put_u32(t.elem);
        enc.put_u32(t.count);
        break;
      case TypeKind::Struct:
        enc.put_string(t.name);
        enc.put_u32(static_cast<std::uint32_t>(t.fields.size()));
        for (const Field& f : t.fields) {
          enc.put_string(f.name);
          enc.put_u32(f.type);
        }
        break;
    }
  }
}

TypeTable TypeTable::decode(xdr::Decoder& dec) {
  TypeTable table;
  const std::uint32_t total = dec.get_u32();
  if (total < xdr::kNumPrimKinds) throw WireError("type table too small");
  for (std::uint32_t i = xdr::kNumPrimKinds; i < total; ++i) {
    const auto kind = static_cast<TypeKind>(dec.get_u8());
    switch (kind) {
      case TypeKind::Pointer: {
        const TypeId pointee = dec.get_u32();
        if (table.intern_pointer(pointee) != i + 1) {
          throw WireError("type table decode produced unstable pointer id");
        }
        break;
      }
      case TypeKind::Array: {
        const TypeId elem = dec.get_u32();
        const std::uint32_t count = dec.get_u32();
        if (table.intern_array(elem, count) != i + 1) {
          throw WireError("type table decode produced unstable array id");
        }
        break;
      }
      case TypeKind::Struct: {
        const std::string name = dec.get_string();
        const TypeId id = table.declare_struct(name);
        if (id != i + 1) throw WireError("type table decode produced unstable struct id");
        const std::uint32_t nfields = dec.get_u32();
        std::vector<Field> fields;
        fields.reserve(nfields);
        for (std::uint32_t f = 0; f < nfields; ++f) {
          Field fld;
          fld.name = dec.get_string();
          fld.type = dec.get_u32();
          fields.push_back(std::move(fld));
        }
        // Self-referential structs point at ids not yet decoded; field
        // validation happens when the whole table is in place.
        TypeInfo& info = table.types_[id - 1];
        info.fields = std::move(fields);
        info.defined = true;
        break;
      }
      default:
        throw WireError("corrupt type table: bad kind tag");
    }
  }
  // Validate all field references now that every id exists, and reject
  // value cycles that the incremental path would have caught.
  for (std::size_t i = 0; i < table.types_.size(); ++i) {
    const TypeInfo& t = table.types_[i];
    if (t.kind == TypeKind::Struct) {
      for (const Field& f : t.fields) static_cast<void>(table.at(f.type));
      table.check_no_value_cycle(static_cast<TypeId>(i + 1));
    }
  }
  return table;
}

namespace {

bool same_entry(const TypeInfo& a, const TypeInfo& b) {
  if (a.kind != b.kind || a.defined != b.defined) return false;
  switch (a.kind) {
    case TypeKind::Primitive:
      return a.prim == b.prim;
    case TypeKind::Pointer:
      return a.pointee == b.pointee;
    case TypeKind::Array:
      return a.elem == b.elem && a.count == b.count;
    case TypeKind::Struct:
      if (a.name != b.name || a.fields.size() != b.fields.size()) return false;
      for (std::size_t i = 0; i < a.fields.size(); ++i) {
        if (a.fields[i].name != b.fields[i].name || a.fields[i].type != b.fields[i].type) {
          return false;
        }
      }
      return true;
  }
  return false;
}

}  // namespace

void TypeTable::adopt_tail(const TypeTable& source) {
  if (source.types_.size() < types_.size()) {
    throw TypeError("migration source's type table is smaller than the destination's");
  }
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (!same_entry(types_[i], source.types_[i])) {
      throw TypeError("type tables diverge at id " + std::to_string(i + 1) +
                      ": source has '" + source.spell(static_cast<TypeId>(i + 1)) +
                      "', destination has '" + spell(static_cast<TypeId>(i + 1)) + "'");
    }
  }
  for (std::size_t i = types_.size(); i < source.types_.size(); ++i) {
    const TypeInfo& t = source.types_[i];
    TypeId got = kInvalidType;
    switch (t.kind) {
      case TypeKind::Primitive:
        throw TypeError("source table has a primitive outside the reserved range");
      case TypeKind::Pointer:
        got = intern_pointer(t.pointee);
        break;
      case TypeKind::Array:
        got = intern_array(t.elem, t.count);
        break;
      case TypeKind::Struct: {
        got = declare_struct(t.name);
        if (got == static_cast<TypeId>(i + 1) && t.defined) {
          define_struct(got, t.fields);
        }
        break;
      }
    }
    if (got != static_cast<TypeId>(i + 1)) {
      throw TypeError("adopting the source type table produced unstable ids (tables "
                      "diverged structurally)");
    }
  }
}

void TypeTable::bind_native(std::type_index t, TypeId id) {
  static_cast<void>(at(id));
  const auto [it, inserted] = native_.emplace(t, id);
  if (!inserted && it->second != id) {
    throw TypeError("native type bound to two different type ids");
  }
}

TypeId TypeTable::native(std::type_index t) const {
  const auto it = native_.find(t);
  return it == native_.end() ? kInvalidType : it->second;
}

}  // namespace hpm::ti
