#include "ti/layout.hpp"

#include <algorithm>

namespace hpm::ti {

const TypeLayout& LayoutMap::of(TypeId id) const {
  table_->at(id);  // validate
  if (cache_.size() < table_->size()) {
    cache_.resize(table_->size());
    ready_.resize(table_->size(), 0);
  }
  if (!ready_[id - 1]) return compute(id);
  return cache_[id - 1];
}

const TypeLayout& LayoutMap::compute(TypeId id) const {
  const TypeInfo& info = table_->at(id);
  TypeLayout out;
  switch (info.kind) {
    case TypeKind::Primitive: {
      const xdr::PrimLayout& pl = arch_->layout(info.prim);
      out.size = pl.size;
      out.align = pl.align;
      break;
    }
    case TypeKind::Pointer: {
      out.size = arch_->pointer.size;
      out.align = arch_->pointer.align;
      break;
    }
    case TypeKind::Array: {
      const TypeLayout& el = of(info.elem);
      out.size = el.size * info.count;
      out.align = el.align;
      break;
    }
    case TypeKind::Struct: {
      if (!info.defined) {
        throw TypeError("cannot lay out undefined struct '" + info.name + "'");
      }
      std::uint64_t offset = 0;
      std::uint32_t align = 1;
      out.field_offsets.reserve(info.fields.size());
      for (const Field& f : info.fields) {
        const TypeLayout& fl = of(f.type);
        offset = align_up(offset, fl.align);
        out.field_offsets.push_back(offset);
        offset += fl.size;
        align = std::max(align, fl.align);
      }
      out.size = align_up(offset, align);
      out.align = align;
      break;
    }
  }
  if (cache_.size() < table_->size()) {
    cache_.resize(table_->size());
    ready_.resize(table_->size(), 0);
  }
  cache_[id - 1] = std::move(out);
  ready_[id - 1] = 1;
  return cache_[id - 1];
}

}  // namespace hpm::ti
