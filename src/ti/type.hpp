// Type Information (TI) table entry model.
//
// The paper's TI table "contains type information of every memory block in
// a process including type-specific functions to transform data of each
// type between machine-specific and machine-independent formats". Here the
// per-type saving/restoring functions are not generated as code; they are
// interpreted generically from TypeInfo by the msrm engine, which produces
// exactly the same traversal a generated function would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xdr/arch.hpp"

namespace hpm::ti {

/// Index into a TypeTable. Id 0 is reserved as "invalid".
using TypeId = std::uint32_t;
inline constexpr TypeId kInvalidType = 0;

enum class TypeKind : std::uint8_t {
  Primitive,  ///< one of xdr::PrimKind
  Pointer,    ///< pointer to `pointee`
  Array,      ///< `count` elements of `elem`
  Struct,     ///< named record with ordered fields
};

/// One named member of a struct type.
struct Field {
  std::string name;
  TypeId type = kInvalidType;
};

/// Immutable description of one type. Which members are meaningful
/// depends on `kind`.
struct TypeInfo {
  TypeKind kind = TypeKind::Primitive;
  std::string name;               ///< struct tag, or canonical spelling
  xdr::PrimKind prim = xdr::PrimKind::Int;  ///< Primitive
  TypeId pointee = kInvalidType;  ///< Pointer
  TypeId elem = kInvalidType;     ///< Array element type
  std::uint32_t count = 0;        ///< Array element count
  std::vector<Field> fields;      ///< Struct members, in declaration order
  bool defined = true;            ///< false while a struct is only declared
};

}  // namespace hpm::ti
