// The TI table: interned, immutable type registry shared by the migration
// source and destination.
//
// The paper assumes the (pre-compiled) program is distributed to every
// potential destination, so both sides hold an identical TI table; the
// stream header carries signature() and restoration refuses to proceed on
// a mismatch. Pointer and array types are interned (structural dedupe);
// struct types are nominal and may be declared first, then defined, to
// allow self-referential types such as `struct node { ...; node* link; }`.
#pragma once

#include <cstdint>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "ti/type.hpp"
#include "xdr/wire.hpp"

namespace hpm::ti {

class TypeTable {
 public:
  TypeTable();

  TypeTable(const TypeTable&) = delete;
  TypeTable& operator=(const TypeTable&) = delete;
  TypeTable(TypeTable&&) = default;
  TypeTable& operator=(TypeTable&&) = default;

  /// Fixed id of a primitive kind (always registered).
  [[nodiscard]] TypeId primitive(xdr::PrimKind k) const noexcept {
    return static_cast<TypeId>(xdr::prim_index(k)) + 1;
  }

  /// Intern `pointee*`; structural — repeated calls return the same id.
  TypeId intern_pointer(TypeId pointee);

  /// Intern `elem[count]`; count must be > 0.
  TypeId intern_array(TypeId elem, std::uint32_t count);

  /// Declare a nominal struct type (fields defined later). Redeclaring an
  /// existing name returns the existing id.
  TypeId declare_struct(const std::string& name);

  /// Complete a declared struct. Throws hpm::TypeError if already defined,
  /// if `fields` is empty, or if the definition would nest a struct inside
  /// itself by value (infinite size).
  void define_struct(TypeId id, std::vector<Field> fields);

  /// Lookup a struct id by tag name; kInvalidType if absent.
  [[nodiscard]] TypeId find_struct(const std::string& name) const;

  /// Access a type; throws hpm::TypeError for out-of-range or invalid id.
  const TypeInfo& at(TypeId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return types_.size(); }

  /// Human-readable spelling of a type ("struct node *", "double[100]").
  [[nodiscard]] std::string spell(TypeId id) const;

  /// True if values of this type contain at least one pointer leaf.
  /// (Pointer-free blocks take the paper's pure-XDR fast path.)
  [[nodiscard]] bool contains_pointer(TypeId id) const;

  /// True if PNEW bodies of this type may take the bulk fast path: the
  /// type is pointer-free, so its body is a pure primitive image that a
  /// same-data-model peer can memcpy instead of converting per element.
  /// Precomputed once per type (invalidated by define_struct).
  [[nodiscard]] bool bulk_eligible(TypeId id) const;

  /// Structural hash of the entire table. Source and destination must
  /// agree for a migration stream to be restorable.
  [[nodiscard]] std::uint64_t signature() const;

  /// Serialize / reconstruct the non-primitive part of the table (used by
  /// tooling and by tests that simulate a mismatched destination).
  void encode(xdr::Encoder& enc) const;
  static TypeTable decode(xdr::Decoder& dec);

  /// Reconcile this table with the migration source's table: verify the
  /// common prefix matches entry-for-entry (throws hpm::TypeError on any
  /// divergence) and append the source's extra entries — the pointer and
  /// array shells the source interned while running code the destination
  /// skips during restoration.
  void adopt_tail(const TypeTable& source);

  /// --- native C++ type binding (used by describe.hpp) -------------------
  void bind_native(std::type_index t, TypeId id);
  [[nodiscard]] TypeId native(std::type_index t) const;  // kInvalidType if unbound

 private:
  TypeId add(TypeInfo info);
  void check_no_value_cycle(TypeId root) const;

  std::vector<TypeInfo> types_;  // index = id - 1
  std::unordered_map<std::uint64_t, TypeId> pointer_cache_;  // pointee -> id
  std::unordered_map<std::uint64_t, TypeId> array_cache_;    // (elem,count) -> id
  std::unordered_map<std::string, TypeId> struct_names_;
  std::unordered_map<std::type_index, TypeId> native_;
  mutable std::vector<std::int8_t> ptr_memo_;   // -1 unknown, 0 no, 1 yes
  mutable std::vector<std::int8_t> bulk_memo_;  // -1 unknown, 0 no, 1 yes
};

}  // namespace hpm::ti
