// Incremental checkpointing: block-level deltas between successive
// checkpoints of a running migratable program.
//
// The paper's §4.3 observation — migration/checkpoint cost tracks the
// amount of live data — motivates the classic remedy: after one full
// (base) capture, later checkpoints write only the memory blocks whose
// contents changed, plus the small execution state. The capture format is
// *flat*: every tracked block is encoded shallowly (pointer cells as
// (block id, leaf ordinal) references, never inlined), which makes
// per-block digesting and diffing trivial. On restart, base + deltas are
// merged and a standard migration stream is synthesized from the merged
// image, so the entire restoration path (binding, skeleton re-execution,
// resume) is reused unchanged.
//
// File format (canonical encoding, CRC-sealed like migration streams):
//
//   File    := u32 'HCKI' | u16 version | u64 seq | str arch | u64 ti-sig
//            | [seq==0: TI table]
//            | ExecutionState
//            | u32 n-freed | n-freed * u64 id
//            | u32 n-blocks | n-blocks * BlockRec
//            | trailer
//   BlockRec:= u64 id | u8 seg | u32 type | u32 count
//            | u32 len | len bytes of flat content
//   content := leaves in ordinal order; primitives canonical; pointer
//              leaves are u8 PNULL, or u8 PREF + u64 id + u64 leaf
#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "mig/context.hpp"

namespace hpm::ckpt {

struct IncrementalStats {
  std::uint64_t sequence = 0;
  std::uint64_t total_blocks = 0;    ///< tracked blocks at capture time
  std::uint64_t written_blocks = 0;  ///< blocks in this file (delta size)
  std::uint64_t freed_blocks = 0;
  std::uint64_t file_bytes = 0;
};

/// Source-side session. Call capture() from a poll observer (or any
/// point where the context is at a poll-quiescent state).
class IncrementalCheckpointer {
 public:
  /// Files are written as `<prefix>.<seq>` under the caller's control of
  /// the directory part; seq 0 is the full base.
  explicit IncrementalCheckpointer(std::string prefix) : prefix_(std::move(prefix)) {}

  /// Capture the context's current state; writes the next file in the
  /// chain and returns what it cost.
  IncrementalStats capture(mig::MigContext& ctx);

  [[nodiscard]] std::uint64_t next_sequence() const noexcept { return next_seq_; }

 private:
  std::string prefix_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<msr::BlockId, std::uint32_t> digests_;  ///< id -> content CRC
};

/// Merge the chain `<prefix>.0 ... <prefix>.<last_seq>`, synthesize a
/// standard migration stream, and restart the program from it.
/// Returns the synthesized stream size.
std::uint64_t restart_incremental(const std::function<void(ti::TypeTable&)>& register_types,
                                  const std::function<void(mig::MigContext&)>& program,
                                  const std::string& prefix, std::uint64_t last_seq);

/// Merge the chain and synthesize the standard migration stream without
/// running anything (tooling, tests).
Bytes synthesize_stream(const std::string& prefix, std::uint64_t last_seq);

}  // namespace hpm::ckpt
