#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <span>

#include "common/crc32.hpp"
#include "mig/chunk_store.hpp"
#include "msrm/stream.hpp"
#include "xdr/wire.hpp"

namespace hpm::ckpt {

namespace {

constexpr std::uint32_t kCkptMagic = 0x48434B50;  // "HCKP"

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error("cannot open checkpoint file: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes data(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (got != data.size()) throw Error("short read from checkpoint file: " + path);
  return data;
}

void write_file(const std::string& path, const Bytes& data) {
  // Write to a sidecar and rename so a crash mid-write never leaves a
  // truncated file under the real name.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw Error("cannot create checkpoint file: " + tmp);
  const std::size_t put = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (put != data.size()) {
    std::remove(tmp.c_str());
    throw Error("short write to checkpoint file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw Error("cannot move checkpoint into place: " + path);
  }
}

/// Preamble := u32 magic | u64 sequence | u32 state-length; the migration
/// stream (with its own seal) follows.
Bytes wrap(std::uint64_t sequence, const Bytes& stream) {
  xdr::Encoder enc(stream.size() + 16);
  enc.put_u32(kCkptMagic);
  enc.put_u64(sequence);
  enc.put_u32(static_cast<std::uint32_t>(stream.size()));
  enc.put_bytes(stream.data(), stream.size());
  return enc.take();
}

struct Unwrapped {
  CheckpointInfo info;
  Bytes stream;
};

Unwrapped unwrap(const Bytes& file) {
  xdr::Decoder dec(file);
  if (dec.get_u32() != kCkptMagic) throw WireError("not a checkpoint file (bad magic)");
  Unwrapped out;
  out.info.sequence = dec.get_u64();
  const std::uint32_t len = dec.get_u32();
  out.stream.resize(len);
  dec.get_bytes(out.stream.data(), len);
  out.info.state_bytes = len;
  // Peek the stream header for the architecture tag (and let the seal
  // validate integrity).
  const auto payload = msrm::check_stream(out.stream);
  xdr::Decoder sdec(payload);
  out.info.source_arch = msrm::read_header(sdec).source_arch;
  return out;
}

}  // namespace

CheckpointInfo checkpoint_run(const std::function<void(ti::TypeTable&)>& register_types,
                              const std::function<void(mig::MigContext&)>& program,
                              const std::string& path, std::uint64_t at_poll,
                              std::uint64_t sequence) {
  // Phase 1: run to the checkpoint and collect (the "migration" half).
  ti::TypeTable types;
  register_types(types);
  mig::MigContext ctx(types);
  ctx.set_migrate_at_poll(at_poll);
  bool collected = false;
  try {
    program(ctx);
  } catch (const mig::MigrationExit&) {
    collected = true;
  }
  if (!collected) {
    throw MigrationError("program completed before reaching checkpoint poll " +
                         std::to_string(at_poll));
  }
  write_file(path, wrap(sequence, ctx.stream()));

  // Phase 2: keep running — restore into a fresh context and finish, so
  // the caller observes checkpoint-and-continue semantics.
  CheckpointInfo info;
  info.sequence = sequence;
  info.state_bytes = ctx.stream().size();
  info.source_arch = ctx.space().arch().name;
  ti::TypeTable resume_types;
  register_types(resume_types);
  mig::MigContext resume(resume_types);
  resume.begin_restore(ctx.stream());
  program(resume);
  return info;
}

CheckpointInfo restart_run(const std::function<void(ti::TypeTable&)>& register_types,
                           const std::function<void(mig::MigContext&)>& program,
                           const std::string& path) {
  const Unwrapped file = unwrap(read_file(path));
  ti::TypeTable types;
  register_types(types);
  mig::MigContext ctx(types);
  ctx.begin_restore(file.stream);
  program(ctx);
  return file.info;
}

CheckpointInfo inspect(const std::string& path) { return unwrap(read_file(path)).info; }

std::size_t seed_chunk_cache(const std::string& ckpt_path, const std::string& cache_dir,
                             std::size_t chunk_bytes, std::uint64_t cache_budget) {
  if (chunk_bytes == 0) throw Error("seed_chunk_cache: chunk_bytes must be positive");
  const Unwrapped file = unwrap(read_file(ckpt_path));
  mig::ChunkStore store(cache_dir, cache_budget);
  store.open();
  std::size_t inserted = 0;
  for (std::size_t off = 0; off < file.stream.size(); off += chunk_bytes) {
    const std::size_t len = std::min(chunk_bytes, file.stream.size() - off);
    const std::span<const std::uint8_t> body{file.stream.data() + off, len};
    if (!store.contains(mig::ChunkStore::address_of(body))) {
      store.put(body);
      ++inserted;
    }
  }
  store.sync_dir();
  return inserted;
}

}  // namespace hpm::ckpt
