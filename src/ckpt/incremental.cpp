#include "ckpt/incremental.hpp"

#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "common/crc32.hpp"
#include "msrm/stream.hpp"
#include "ti/leaf.hpp"
#include "xdr/value.hpp"

namespace hpm::ckpt {

namespace {

constexpr std::uint32_t kMagic = 0x48434B49;  // "HCKI"
constexpr std::uint16_t kVersion = 1;

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error("cannot open incremental checkpoint: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes data(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (got != data.size()) throw Error("short read: " + path);
  return data;
}

void write_file(const std::string& path, const Bytes& data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw Error("cannot create: " + tmp);
  const std::size_t put = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (put != data.size() || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot write: " + path);
  }
}

std::string chain_path(const std::string& prefix, std::uint64_t seq) {
  return prefix + "." + std::to_string(seq);
}

/// Shallow (non-traversing) content encoding of one block: primitives
/// canonical, pointer cells as PNULL / PREF(id, leaf).
void shallow_encode_type(const msr::MemorySpace& space, msr::Address base, ti::TypeId type,
                         xdr::Encoder& enc) {
  const ti::TypeInfo& info = space.types().at(type);
  switch (info.kind) {
    case ti::TypeKind::Primitive:
      xdr::encode_canonical(enc, space.read_prim(base, info.prim));
      return;
    case ti::TypeKind::Pointer: {
      const msr::Address value = space.read_pointer(base);
      if (value == 0) {
        enc.put_u8(msrm::kPtrNull);
      } else {
        const msr::LogicalPointer lp = msr::resolve_pointer(space, value);
        enc.put_u8(msrm::kPtrRef);
        enc.put_u64(lp.block);
        enc.put_u64(lp.leaf);
      }
      return;
    }
    case ti::TypeKind::Array: {
      const std::uint64_t elem_size = space.layouts().of(info.elem).size;
      for (std::uint32_t i = 0; i < info.count; ++i) {
        shallow_encode_type(space, base + i * elem_size, info.elem, enc);
      }
      return;
    }
    case ti::TypeKind::Struct: {
      const ti::TypeLayout& sl = space.layouts().of(type);
      for (std::size_t i = 0; i < info.fields.size(); ++i) {
        shallow_encode_type(space, base + sl.field_offsets[i], info.fields[i].type, enc);
      }
      return;
    }
  }
}

Bytes shallow_encode_block(const msr::MemorySpace& space, const msr::MemoryBlock& block) {
  xdr::Encoder enc(block.size + 16);
  const std::uint64_t elem_size = space.layouts().of(block.type).size;
  for (std::uint32_t e = 0; e < block.count; ++e) {
    shallow_encode_type(space, block.base + e * elem_size, block.type, enc);
  }
  return enc.take();
}

struct BlockImage {
  std::uint8_t seg = 2;
  ti::TypeId type = ti::kInvalidType;
  std::uint32_t count = 1;
  Bytes content;
};

struct Chain {
  ti::TypeTable table;
  std::string arch;
  std::uint64_t signature = 0;
  msrm::ExecutionState exec;
  std::map<msr::BlockId, BlockImage> blocks;
};

Chain load_chain(const std::string& prefix, std::uint64_t last_seq) {
  Chain chain;
  for (std::uint64_t seq = 0; seq <= last_seq; ++seq) {
    const Bytes file = read_file(chain_path(prefix, seq));
    const auto payload = msrm::check_stream(file);
    xdr::Decoder dec(payload);
    if (dec.get_u32() != kMagic) throw WireError("not an incremental checkpoint file");
    if (dec.get_u16() != kVersion) throw WireError("unsupported incremental version");
    const std::uint64_t file_seq = dec.get_u64();
    if (file_seq != seq) {
      throw WireError("checkpoint chain out of order: expected seq " + std::to_string(seq) +
                      ", file says " + std::to_string(file_seq));
    }
    chain.arch = dec.get_string();
    chain.signature = dec.get_u64();
    chain.table = ti::TypeTable::decode(dec);
    if (chain.table.signature() != chain.signature) {
      throw WireError("incremental checkpoint type table corrupt");
    }
    chain.exec = msrm::ExecutionState::decode(dec);
    const std::uint32_t n_freed = dec.get_u32();
    for (std::uint32_t i = 0; i < n_freed; ++i) chain.blocks.erase(dec.get_u64());
    const std::uint32_t n_blocks = dec.get_u32();
    for (std::uint32_t i = 0; i < n_blocks; ++i) {
      const msr::BlockId id = dec.get_u64();
      BlockImage image;
      image.seg = dec.get_u8();
      image.type = dec.get_u32();
      image.count = dec.get_u32();
      const std::uint32_t len = dec.get_u32();
      image.content.resize(len);
      dec.get_bytes(image.content.data(), len);
      chain.blocks[id] = std::move(image);
    }
    if (!dec.at_end()) throw WireError("trailing bytes in incremental checkpoint");
  }
  return chain;
}

/// Emit the standard migration-stream data section by DFS over the merged
/// block images (explicit stack; bit-for-bit re-encoding of leaves).
class Synthesizer {
 public:
  Synthesizer(const Chain& chain, xdr::Encoder& enc)
      : chain_(chain), enc_(enc), leaves_(chain.table) {}

  /// One variable record: a pointer-value for (block, leaf 0).
  void emit_variable(msr::BlockId id) { emit_target(id, 0); drain(); }

 private:
  struct Pending {
    msr::BlockId id;
    const BlockImage* image;
    const std::vector<ti::LeafRef>* leaf_list;  // null => pointer-free verbatim copy
    std::uint32_t elem_idx = 0;
    std::uint64_t leaf_idx = 0;
    std::size_t content_pos = 0;  // decode cursor into image->content
  };

  const std::vector<ti::LeafRef>& leaf_list_of(ti::TypeId type) {
    const auto it = leaf_cache_.find(type);
    if (it != leaf_cache_.end()) return it->second;
    std::vector<ti::LeafRef> list;
    ti::for_each_leaf(leaves_, layouts_, type,
                      [&list](const ti::LeafRef& ref) { list.push_back(ref); });
    return leaf_cache_.emplace(type, std::move(list)).first->second;
  }

  void emit_target(msr::BlockId id, std::uint64_t leaf) {
    const auto bit = chain_.blocks.find(id);
    if (bit == chain_.blocks.end()) {
      throw WireError("incremental chain references missing block id " + std::to_string(id));
    }
    if (!visited_.insert(id).second) {
      enc_.put_u8(msrm::kPtrRef);
      enc_.put_u64(id);
      enc_.put_u64(leaf);
      return;
    }
    const BlockImage& image = bit->second;
    enc_.put_u8(msrm::kPtrNew);
    enc_.put_u64(id);
    enc_.put_u64(leaf);
    enc_.put_u8(image.seg);
    enc_.put_u32(image.type);
    enc_.put_u32(image.count);
    if (!chain_.table.contains_pointer(image.type)) {
      // Pointer-free (= bulk-eligible on the wire): the flat content IS
      // the canonical body, verbatim, behind the v2 flat-body tag.
      enc_.put_u8(msrm::kBodyCanonical);
      enc_.put_bytes(image.content.data(), image.content.size());
      return;
    }
    Pending p;
    p.id = id;
    p.image = &image;
    p.leaf_list = &leaf_list_of(image.type);
    stack_.push_back(p);
  }

  void drain() {
    while (!stack_.empty()) {
      const std::size_t my_index = stack_.size() - 1;
      bool suspended = false;
      for (;;) {
        Pending cur = stack_[my_index];
        if (cur.elem_idx >= cur.image->count) break;
        if (cur.leaf_idx >= cur.leaf_list->size()) {
          stack_[my_index].elem_idx = cur.elem_idx + 1;
          stack_[my_index].leaf_idx = 0;
          continue;
        }
        const ti::LeafRef& ref = (*cur.leaf_list)[cur.leaf_idx];
        xdr::Decoder content(cur.image->content.data() + cur.content_pos,
                             cur.image->content.size() - cur.content_pos);
        if (!ref.is_pointer) {
          xdr::encode_canonical(enc_, xdr::decode_canonical(content, ref.prim));
          stack_[my_index].content_pos = cur.content_pos + content.position();
          stack_[my_index].leaf_idx = cur.leaf_idx + 1;
          continue;
        }
        // Pointer leaf: read the flat tag, then emit standard grammar.
        const std::uint8_t tag = content.get_u8();
        msr::BlockId target_id = 0;
        std::uint64_t target_leaf = 0;
        if (tag == msrm::kPtrRef) {
          target_id = content.get_u64();
          target_leaf = content.get_u64();
        } else if (tag != msrm::kPtrNull) {
          throw WireError("corrupt flat content: bad pointer tag");
        }
        stack_[my_index].content_pos = cur.content_pos + content.position();
        stack_[my_index].leaf_idx = cur.leaf_idx + 1;
        if (tag == msrm::kPtrNull) {
          enc_.put_u8(msrm::kPtrNull);
        } else {
          emit_target(target_id, target_leaf);
          if (stack_.size() > my_index + 1) {
            suspended = true;
            break;
          }
        }
      }
      if (!suspended) stack_.pop_back();
    }
  }

  const Chain& chain_;
  xdr::Encoder& enc_;
  ti::LayoutMap layouts_{chain_.table, xdr::native_arch()};
  ti::LeafIndex leaves_;
  std::unordered_map<ti::TypeId, std::vector<ti::LeafRef>> leaf_cache_;
  std::set<msr::BlockId> visited_;
  std::vector<Pending> stack_;
};

Bytes synthesize(const Chain& chain) {
  xdr::Encoder enc(1 << 16);
  msrm::write_header(enc, {chain.arch, chain.signature});
  chain.table.encode(enc);
  chain.exec.encode(enc);
  Synthesizer synth(chain, enc);
  for (std::size_t i = chain.exec.frames.size(); i-- > 0;) {
    for (const msrm::SavedVar& var : chain.exec.frames[i].vars) {
      synth.emit_variable(var.source_block);
    }
  }
  for (const msrm::SavedVar& var : chain.exec.globals) {
    synth.emit_variable(var.source_block);
  }
  msrm::finish_stream(enc);
  return enc.take();
}

}  // namespace

IncrementalStats IncrementalCheckpointer::capture(mig::MigContext& ctx) {
  msr::HostSpace& space = ctx.space();
  IncrementalStats stats;
  stats.sequence = next_seq_;

  xdr::Encoder enc(1 << 16);
  enc.put_u32(kMagic);
  enc.put_u16(kVersion);
  enc.put_u64(next_seq_);
  enc.put_string(space.arch().name);
  enc.put_u64(ctx.types().signature());
  ctx.types().encode(enc);
  ctx.snapshot_execution_state().encode(enc);

  // Diff the tracked block set against the previous capture.
  struct ChangedBlock {
    const msr::MemoryBlock* block;
    Bytes content;
  };
  std::unordered_map<msr::BlockId, std::uint32_t> current;
  std::vector<ChangedBlock> changed;
  space.msrlt().for_each_block([&](const msr::MemoryBlock& block) {
    Bytes content = shallow_encode_block(space, block);
    const std::uint32_t digest = Crc32::of(content.data(), content.size());
    current.emplace(block.id, digest);
    const auto prev = digests_.find(block.id);
    if (prev == digests_.end() || prev->second != digest) {
      changed.push_back(ChangedBlock{&block, std::move(content)});
    }
  });
  std::vector<msr::BlockId> freed;
  for (const auto& [id, digest] : digests_) {
    if (current.find(id) == current.end()) freed.push_back(id);
  }

  enc.put_u32(static_cast<std::uint32_t>(freed.size()));
  for (const msr::BlockId id : freed) enc.put_u64(id);
  enc.put_u32(static_cast<std::uint32_t>(changed.size()));
  for (const ChangedBlock& c : changed) {
    enc.put_u64(c.block->id);
    enc.put_u8(static_cast<std::uint8_t>(c.block->segment));
    enc.put_u32(c.block->type);
    enc.put_u32(c.block->count);
    enc.put_u32(static_cast<std::uint32_t>(c.content.size()));
    enc.put_bytes(c.content.data(), c.content.size());
  }
  msrm::finish_stream(enc);
  const Bytes file = enc.take();
  write_file(chain_path(prefix_, next_seq_), file);

  stats.total_blocks = current.size();
  stats.written_blocks = changed.size();
  stats.freed_blocks = freed.size();
  stats.file_bytes = file.size();
  digests_ = std::move(current);
  ++next_seq_;
  return stats;
}

Bytes synthesize_stream(const std::string& prefix, std::uint64_t last_seq) {
  return synthesize(load_chain(prefix, last_seq));
}

std::uint64_t restart_incremental(const std::function<void(ti::TypeTable&)>& register_types,
                                  const std::function<void(mig::MigContext&)>& program,
                                  const std::string& prefix, std::uint64_t last_seq) {
  const Bytes stream = synthesize_stream(prefix, last_seq);
  ti::TypeTable types;
  register_types(types);
  mig::MigContext ctx(types);
  ctx.begin_restore(stream);
  program(ctx);
  return stream.size();
}

}  // namespace hpm::ckpt
