// Checkpoint/restart on top of the migration stream.
//
// The paper's data collection/restoration mechanism is exactly a
// process-state serializer; pointing it at a file instead of a socket
// yields heterogeneous checkpointing for free (§5 positions this as the
// basic component of a larger mobility system). A checkpoint written on
// one architecture restarts on any other, because the stream is the same
// canonical format migration uses.
//
// File format: the migration stream (header + TI table + execution state
// + data + CRC trailer), preceded by a small checkpoint preamble with a
// wall-clock-free sequence number so a restart manager can pick the
// newest of several checkpoint files.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mig/context.hpp"

namespace hpm::ckpt {

struct CheckpointInfo {
  std::uint64_t sequence = 0;      ///< caller-supplied monotonic number
  std::uint64_t state_bytes = 0;   ///< migration-stream payload size
  std::string source_arch;         ///< architecture that wrote it
};

/// Run `program` under a context that checkpoints at poll `at_poll` and
/// then *continues* (unlike migration, the process does not terminate):
/// the collected stream is written to `path` and the program is resumed
/// by immediately restoring the state into a fresh context — the
/// fork-like "checkpoint and keep running" semantics.
///
/// Returns the info block of the checkpoint written. Throws hpm::Error
/// subclasses on failure.
CheckpointInfo checkpoint_run(const std::function<void(ti::TypeTable&)>& register_types,
                              const std::function<void(mig::MigContext&)>& program,
                              const std::string& path, std::uint64_t at_poll,
                              std::uint64_t sequence = 1);

/// Restart a checkpointed program from `path`: restores the execution
/// and memory state and runs the program to completion.
CheckpointInfo restart_run(const std::function<void(ti::TypeTable&)>& register_types,
                           const std::function<void(mig::MigContext&)>& program,
                           const std::string& path);

/// Read just the preamble (validation, tooling, newest-file selection).
CheckpointInfo inspect(const std::string& path);

/// Seed a migration chunk cache (a `mig::ChunkStore` directory, see
/// DESIGN.md §15) with the canonical chunks of the checkpoint's embedded
/// stream, sliced at `chunk_bytes` — the same chunking the dedup'd
/// transfer announces in its manifest. A migration of the checkpointed
/// process whose `RunOptions::{chunk_cache_dir,chunk_bytes}` match then
/// answers its manifest from the checkpoint: checkpoint rounds and
/// migrations hit the same cache. Returns the number of chunks inserted.
std::size_t seed_chunk_cache(const std::string& ckpt_path, const std::string& cache_dir,
                             std::size_t chunk_bytes,
                             std::uint64_t cache_budget = 256ull << 20);

}  // namespace hpm::ckpt
