#include "apps/linpack.hpp"

#include <cfloat>
#include <cmath>

namespace hpm::apps {

namespace {

/// --- plain BLAS-1 kernels (netlib linpack, C translation) ---------------
/// Deliberately NOT annotated: the paper (§4.3) observes that poll-points
/// inside small, hot kernels dominate the execution overhead.

int idamax(int n, const double* dx) {
  if (n < 1) return -1;
  int imax = 0;
  double dmax = std::fabs(dx[0]);
  for (int i = 1; i < n; ++i) {
    const double v = std::fabs(dx[i]);
    if (v > dmax) {
      dmax = v;
      imax = i;
    }
  }
  return imax;
}

void dscal(int n, double da, double* dx) {
  for (int i = 0; i < n; ++i) dx[i] *= da;
}

void daxpy(int n, double da, const double* dx, double* dy) {
  if (da == 0.0) return;
  for (int i = 0; i < n; ++i) dy[i] += da * dx[i];
}

/// Matrix generator from the netlib driver: a deterministic LCG so the
/// verification step can regenerate the original system after the matrix
/// has been overwritten by its LU factors.
void matgen(double* a, int lda, int n, double* b, std::uint64_t seed, double* norma) {
  // The netlib generator's multiplicative LCG works modulo 2^16, so the
  // state must stay odd (1325 is); an even seed perturbation collapses
  // the sequence onto a coarse lattice and yields singular systems.
  int init = 1325 + 2 * static_cast<int>(seed % 1000);
  *norma = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      init = 3125 * init % 65536;
      a[lda * j + i] = (init - 32768.0) / 16384.0;
      if (a[lda * j + i] > *norma) *norma = a[lda * j + i];
    }
  }
  for (int i = 0; i < n; ++i) b[i] = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) b[i] += a[lda * j + i];
  }
}

/// --- migratable LU factorization (dgefa) --------------------------------

void dgefa(mig::MigContext& ctx, double* a, int lda, int n, int* ipvt, int* info) {
  HPM_FUNCTION(ctx);
  // Registered locals are part of the canonical stream from the FIRST
  // poll on, before the loop body has written them — they must start
  // deterministic or two collections of the same state differ in the
  // garbage under the not-yet-live slots.
  int k = 0, j = 0, l = 0, nm1 = 0;
  double t = 0;
  HPM_LOCAL(ctx, a);
  HPM_LOCAL(ctx, lda);
  HPM_LOCAL(ctx, n);
  HPM_LOCAL(ctx, ipvt);
  HPM_LOCAL(ctx, info);
  HPM_LOCAL(ctx, k);
  HPM_LOCAL(ctx, j);
  HPM_LOCAL(ctx, l);
  HPM_LOCAL(ctx, nm1);
  HPM_LOCAL(ctx, t);
  HPM_BODY(ctx);
  *info = 0;
  nm1 = n - 1;
  if (nm1 >= 1) {
    for (k = 0; k < nm1; ++k) {
      // One poll per eliminated column: coarse enough to stay cheap, fine
      // enough that a migration request is honored promptly.
      HPM_POLL(ctx, 1);
      l = idamax(n - k, a + lda * k + k) + k;
      ipvt[k] = l;
      if (a[lda * k + l] == 0.0) {
        *info = k + 1;
        continue;
      }
      if (l != k) {
        t = a[lda * k + l];
        a[lda * k + l] = a[lda * k + k];
        a[lda * k + k] = t;
      }
      t = -1.0 / a[lda * k + k];
      dscal(n - (k + 1), t, a + lda * k + k + 1);
      for (j = k + 1; j < n; ++j) {
        t = a[lda * j + l];
        if (l != k) {
          a[lda * j + l] = a[lda * j + k];
          a[lda * j + k] = t;
        }
        daxpy(n - (k + 1), t, a + lda * k + k + 1, a + lda * j + k + 1);
      }
    }
  }
  ipvt[n - 1] = n - 1;
  if (a[lda * (n - 1) + (n - 1)] == 0.0) *info = n;
  HPM_BODY_END(ctx);
}

/// --- migratable triangular solve (dgesl, job = 0) ------------------------

void dgesl(mig::MigContext& ctx, double* a, int lda, int n, int* ipvt, double* b) {
  HPM_FUNCTION(ctx);
  int k = 0, kb = 0, l = 0, nm1 = 0;  // deterministic at every poll, like dgefa
  double t = 0;
  HPM_LOCAL(ctx, a);
  HPM_LOCAL(ctx, lda);
  HPM_LOCAL(ctx, n);
  HPM_LOCAL(ctx, ipvt);
  HPM_LOCAL(ctx, b);
  HPM_LOCAL(ctx, k);
  HPM_LOCAL(ctx, kb);
  HPM_LOCAL(ctx, l);
  HPM_LOCAL(ctx, nm1);
  HPM_LOCAL(ctx, t);
  HPM_BODY(ctx);
  nm1 = n - 1;
  if (nm1 >= 1) {
    for (k = 0; k < nm1; ++k) {
      HPM_POLL(ctx, 1);
      l = ipvt[k];
      t = b[l];
      if (l != k) {
        b[l] = b[k];
        b[k] = t;
      }
      daxpy(n - (k + 1), t, a + lda * k + k + 1, b + k + 1);
    }
  }
  for (kb = 0; kb < n; ++kb) {
    HPM_POLL(ctx, 2);
    k = n - 1 - kb;
    b[k] /= a[lda * k + k];
    t = -b[k];
    daxpy(k, t, a + lda * k, b);
  }
  HPM_BODY_END(ctx);
}

}  // namespace

void linpack_register_types(ti::TypeTable&) {
  // linpack uses only primitives (double, int) — nothing to register.
}

std::uint64_t linpack_live_bytes(int n) {
  const std::uint64_t nn = static_cast<std::uint64_t>(n);
  return nn * nn * sizeof(double)      // matrix a
         + 2 * nn * sizeof(double)     // b and the saved right-hand side
         + nn * sizeof(int);           // ipvt
}

void linpack_program(mig::MigContext& ctx, int n, std::uint64_t seed, LinpackResult* out) {
  HPM_FUNCTION(ctx);
  double *a = nullptr, *b = nullptr, *b0 = nullptr;
  int* ipvt = nullptr;
  int info = 0;
  double norma = 0;
  HPM_LOCAL(ctx, a);
  HPM_LOCAL(ctx, b);
  HPM_LOCAL(ctx, b0);
  HPM_LOCAL(ctx, ipvt);
  HPM_LOCAL(ctx, info);
  HPM_LOCAL(ctx, norma);
  HPM_LOCAL(ctx, n);
  HPM_LOCAL(ctx, seed);
  // `out` stays unregistered on purpose: the completing side writes it,
  // and program entry arguments are re-supplied on the destination.
  HPM_BODY(ctx);

  // The paper's linpack allocates its matrices once, up front, and never
  // allocates during the solve: a small, constant number of MSR nodes.
  a = ctx.heap_alloc<double>(static_cast<std::uint32_t>(n) * n, "a");
  b = ctx.heap_alloc<double>(static_cast<std::uint32_t>(n), "b");
  b0 = ctx.heap_alloc<double>(static_cast<std::uint32_t>(n), "b0");
  matgen(a, n, n, b, seed, &norma);
  for (int i = 0; i < n; ++i) b0[i] = b[i];
  ipvt = ctx.heap_alloc<int>(static_cast<std::uint32_t>(n), "ipvt");

  HPM_CALL(ctx, 10, dgefa(ctx, HPM_ARG(ctx, a), HPM_ARG(ctx, n), HPM_ARG(ctx, n),
                          HPM_ARG(ctx, ipvt), HPM_ARG(ctx, &info)));
  HPM_CALL(ctx, 11, dgesl(ctx, HPM_ARG(ctx, a), HPM_ARG(ctx, n), HPM_ARG(ctx, n),
                          HPM_ARG(ctx, ipvt), HPM_ARG(ctx, b)));

  {
    // Verification: regenerate the original system and compute the
    // residual of the migrated-and-solved x (in b).
    double* a0 = ctx.heap_alloc<double>(static_cast<std::uint32_t>(n) * n, "a0");
    double* r = ctx.heap_alloc<double>(static_cast<std::uint32_t>(n), "r");
    double norma0;
    matgen(a0, n, n, r, seed, &norma0);
    for (int i = 0; i < n; ++i) r[i] = -b0[i];
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) r[i] += a0[n * j + i] * b[j];
    }
    double resid = 0.0;
    for (int i = 0; i < n; ++i) {
      if (std::fabs(r[i]) > resid) resid = std::fabs(r[i]);
    }
    out->done = (info == 0);
    out->n = n;
    out->residual = resid;
    out->normalized = resid / (n * norma0 * DBL_EPSILON);
    ctx.heap_free(a0);
    ctx.heap_free(r);
  }
  ctx.heap_free(a);
  ctx.heap_free(b);
  ctx.heap_free(b0);
  ctx.heap_free(ipvt);
  HPM_BODY_END(ctx);
}

}  // namespace hpm::apps
