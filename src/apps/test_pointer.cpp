#include "apps/test_pointer.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "ti/describe.hpp"

namespace hpm::apps {

namespace {

TreeNode* build_tree(mig::MigContext& ctx, int depth, long path) {
  TreeNode* node = ctx.heap_alloc<TreeNode>(1, "tree");
  node->depth_tag = depth * 1000 + path;
  node->weight = 0.5 * static_cast<double>(node->depth_tag);
  if (depth == 0) {
    node->left = nullptr;
    node->right = nullptr;
  } else {
    node->left = build_tree(ctx, depth - 1, path * 2);
    node->right = build_tree(ctx, depth - 1, path * 2 + 1);
  }
  return node;
}

bool check_tree(const TreeNode* node, int depth, long path) {
  if (node == nullptr) return false;
  if (node->depth_tag != depth * 1000 + path) return false;
  if (node->weight != 0.5 * static_cast<double>(node->depth_tag)) return false;
  if (depth == 0) return node->left == nullptr && node->right == nullptr;
  return check_tree(node->left, depth - 1, path * 2) &&
         check_tree(node->right, depth - 1, path * 2 + 1);
}

void free_tree(mig::MigContext& ctx, TreeNode* node) {
  if (node == nullptr) return;
  free_tree(ctx, node->left);
  free_tree(ctx, node->right);
  ctx.heap_free(node);
}

void tp_main(mig::MigContext& ctx, std::uint64_t seed, TestPointerResult* out,
             ListNode** first, ListNode** last) {
  HPM_FUNCTION(ctx);
  TreeNode* tree = nullptr;
  int* pint = nullptr;
  int(*parr10)[10] = nullptr;        // pointer to array of 10 integers
  int*(*pparr)[10] = nullptr;        // pointer to array of 10 pointers to integers
  ListNode* parray[10] = {};         // the paper's main(): array of list-node pointers
  int* interior = nullptr;           // pointer into the middle of *parr10
  int i = 0;
  HPM_LOCAL(ctx, tree);
  HPM_LOCAL(ctx, pint);
  HPM_LOCAL(ctx, parr10);
  HPM_LOCAL(ctx, pparr);
  HPM_LOCAL(ctx, parray);
  HPM_LOCAL(ctx, interior);
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, seed);
  HPM_BODY(ctx);

  // --- construction (source side only; skipped when restoring) ----------
  tree = build_tree(ctx, 4, 1);

  pint = ctx.heap_alloc<int>(1, "pint");
  *pint = static_cast<int>(42 + seed % 100);

  parr10 = ctx.heap_alloc<int[10]>(1, "parr10");
  for (i = 0; i < 10; ++i) (*parr10)[i] = i * i;
  interior = &(*parr10)[5];

  pparr = ctx.heap_alloc<int*[10]>(1, "pparr");
  (*pparr)[0] = pint;             // shares the scalar target
  (*pparr)[1] = &(*parr10)[3];    // interior pointer into another block
  (*pparr)[2] = nullptr;
  for (i = 3; i < 10; ++i) (*pparr)[i] = pint;  // more sharing

  for (i = 0; i < 10; ++i) {
    parray[i] = ctx.heap_alloc<ListNode>(1, "list");
    parray[i]->data = 10.0f * static_cast<float>(i);
    parray[i]->link = nullptr;
    if (i > 0) parray[i]->link = parray[i - 1];
  }
  *first = parray[0];
  *last = parray[9];
  (*first)->link = *last;  // closes the cycle 0 -> 9 -> 8 -> ... -> 1 -> 0

  // --- the migration point ------------------------------------------------
  HPM_POLL(ctx, 1);

  // --- verification (completing side: source if no migration, else
  // destination with fully restored state) --------------------------------
  out->tree_ok = check_tree(tree, 4, 1);
  out->scalar_ptr_ok = (*pint == static_cast<int>(42 + seed % 100));

  out->array_ptr_ok = true;
  for (i = 0; i < 10; ++i) {
    if ((*parr10)[i] != i * i) out->array_ptr_ok = false;
  }

  out->ptr_array_ok = ((*pparr)[0] == pint) && ((*pparr)[1] == &(*parr10)[3]) &&
                      (*(*pparr)[1] == 9) && ((*pparr)[2] == nullptr) &&
                      ((*pparr)[7] == pint);
  out->interior_ok = (interior == &(*parr10)[5]) && (*interior == 25);

  out->dag_ok = (*first == parray[0]) && (*last == parray[9]);
  {
    // Walk the cycle: 10 hops from first must return to first, visiting
    // each node's expected payload.
    ListNode* walk = *first;
    bool cycle = true;
    const float expected[10] = {0, 90, 80, 70, 60, 50, 40, 30, 20, 10};
    for (i = 0; i < 10; ++i) {
      if (walk == nullptr || walk->data != expected[i]) {
        cycle = false;
        break;
      }
      walk = walk->link;
    }
    out->cycle_ok = cycle && (walk == *first);
  }
  out->done = true;

  *first = nullptr;  // drop the global references before freeing their
  *last = nullptr;   // targets: no dangling edges remain in the MSR graph
  for (i = 0; i < 10; ++i) ctx.heap_free(parray[i]);
  ctx.heap_free(pparr);
  ctx.heap_free(parr10);
  ctx.heap_free(pint);
  free_tree(ctx, tree);
  HPM_BODY_END(ctx);
}

}  // namespace

void test_pointer_register_types(ti::TypeTable& table) {
  {
    ti::StructBuilder<ListNode> b(table, "node");  // the paper's Figure 1 name
    HPM_TI_FIELD(b, ListNode, data);
    HPM_TI_FIELD(b, ListNode, link);
    b.commit();
  }
  {
    ti::StructBuilder<TreeNode> b(table, "tree_node");
    HPM_TI_FIELD(b, TreeNode, weight);
    HPM_TI_FIELD(b, TreeNode, depth_tag);
    HPM_TI_FIELD(b, TreeNode, left);
    HPM_TI_FIELD(b, TreeNode, right);
    b.commit();
  }
}

void test_pointer_program(mig::MigContext& ctx, std::uint64_t seed, TestPointerResult* out) {
  // Figure 1 globals; created per context, before the first frame.
  ListNode*& first = ctx.global<ListNode*>("first");
  ListNode*& last = ctx.global<ListNode*>("last");
  tp_main(ctx, seed, out, &first, &last);
}

}  // namespace hpm::apps
