// The bitonic sort program — the paper's allocation- and recursion-heavy
// workload.
//
// A perfect binary tree stores randomly generated integers in its leaves
// (one heap allocation per node — "extensive memory allocations"); a
// recursive bitonic sorting network permutes the leaf values so an
// in-order traversal yields them sorted. The MSR profile is the opposite
// of linpack's: a very large number of very small memory blocks, so the
// MSRLT search term O(n log n) dominates collection while restoration
// pays only the O(n) update term — the divergence Figure 2(b) shows.
#pragma once

#include <cstdint>

#include "mig/annotate.hpp"

namespace hpm::apps {

/// One tree node; leaves carry values, internal nodes carry structure.
/// Mirrors the paper's example `struct node` shape (scalar + links).
struct BitonicNode {
  int value;
  BitonicNode* left;
  BitonicNode* right;
};

struct BitonicResult {
  bool done = false;
  std::uint32_t leaves = 0;
  bool sorted = false;          ///< in-order traversal is non-decreasing
  std::uint64_t sum_before = 0; ///< multiset preservation check
  std::uint64_t sum_after = 0;
  [[nodiscard]] bool ok() const noexcept { return done && sorted && sum_before == sum_after; }
};

void bitonic_register_types(ti::TypeTable& table);

/// Build a tree with 2^log2_leaves leaves of random ints, bitonic-sort it,
/// verify, free. Writes *out on the completing side only.
void bitonic_program(mig::MigContext& ctx, int log2_leaves, std::uint64_t seed,
                     BitonicResult* out);

/// Number of heap blocks (MSR nodes) the program creates: 2^(d+1) - 1.
std::uint64_t bitonic_block_count(int log2_leaves);

}  // namespace hpm::apps
