#include "apps/bitonic.hpp"

#include "common/rng.hpp"
#include "ti/describe.hpp"

namespace hpm::apps {

namespace {

/// Plain recursive construction: runs before any migration can trigger
/// (no poll-points), so it needs no annotation — but every node comes
/// from the migratable heap and is therefore a tracked MSR block.
BitonicNode* build_tree(mig::MigContext& ctx, int depth, Rng& rng) {
  BitonicNode* node = ctx.heap_alloc<BitonicNode>(1, "node");
  if (depth == 0) {
    node->value = static_cast<int>(rng.next_below(1u << 30));
    node->left = nullptr;
    node->right = nullptr;
    return node;
  }
  node->value = 0;
  node->left = build_tree(ctx, depth - 1, rng);
  node->right = build_tree(ctx, depth - 1, rng);
  return node;
}

void free_tree(mig::MigContext& ctx, BitonicNode* node) {
  if (node == nullptr) return;
  free_tree(ctx, node->left);
  free_tree(ctx, node->right);
  ctx.heap_free(node);
}

bool check_sorted(const BitonicNode* node, int* prev, std::uint64_t* sum) {
  if (node->left == nullptr) {
    *sum += static_cast<std::uint64_t>(node->value);
    if (node->value < *prev) return false;
    *prev = node->value;
    return true;
  }
  return check_sorted(node->left, prev, sum) && check_sorted(node->right, prev, sum);
}

std::uint64_t leaf_sum(const BitonicNode* node) {
  if (node->left == nullptr) return static_cast<std::uint64_t>(node->value);
  return leaf_sum(node->left) + leaf_sum(node->right);
}

/// --- migratable sorting network ------------------------------------------

/// Compare-exchange corresponding leaves of two equal-shape subtrees.
/// The poll-point sits at the leaf comparison — the finest-grained (and
/// most migration-responsive) point in the program.
void cswap_rec(mig::MigContext& ctx, BitonicNode* x, BitonicNode* y, int ascending) {
  HPM_FUNCTION(ctx);
  int t = 0;  // deterministic at the poll before the first write
  HPM_LOCAL(ctx, x);
  HPM_LOCAL(ctx, y);
  HPM_LOCAL(ctx, ascending);
  HPM_LOCAL(ctx, t);
  HPM_BODY(ctx);
  if (x->left == nullptr) {
    HPM_POLL(ctx, 1);
    if ((x->value > y->value) == (ascending != 0)) {
      t = x->value;
      x->value = y->value;
      y->value = t;
    }
  } else {
    HPM_CALL(ctx, 2, cswap_rec(ctx, HPM_ARG(ctx, x->left), HPM_ARG(ctx, y->left),
                               HPM_ARG(ctx, ascending)));
    HPM_CALL(ctx, 3, cswap_rec(ctx, HPM_ARG(ctx, x->right), HPM_ARG(ctx, y->right),
                               HPM_ARG(ctx, ascending)));
  }
  HPM_BODY_END(ctx);
}

/// Bitonic merge: the subtree's leaves form a bitonic sequence; make them
/// monotonic.
void merge_rec(mig::MigContext& ctx, BitonicNode* node, int ascending) {
  HPM_FUNCTION(ctx);
  HPM_LOCAL(ctx, node);
  HPM_LOCAL(ctx, ascending);
  HPM_BODY(ctx);
  if (node->left != nullptr) {
    HPM_CALL(ctx, 1, cswap_rec(ctx, HPM_ARG(ctx, node->left), HPM_ARG(ctx, node->right),
                               HPM_ARG(ctx, ascending)));
    HPM_CALL(ctx, 2, merge_rec(ctx, HPM_ARG(ctx, node->left), HPM_ARG(ctx, ascending)));
    HPM_CALL(ctx, 3, merge_rec(ctx, HPM_ARG(ctx, node->right), HPM_ARG(ctx, ascending)));
  }
  HPM_BODY_END(ctx);
}

/// Full bitonic sort of the subtree's leaves.
void sort_rec(mig::MigContext& ctx, BitonicNode* node, int ascending) {
  HPM_FUNCTION(ctx);
  HPM_LOCAL(ctx, node);
  HPM_LOCAL(ctx, ascending);
  HPM_BODY(ctx);
  if (node->left != nullptr) {
    HPM_CALL(ctx, 1, sort_rec(ctx, HPM_ARG(ctx, node->left), 1));
    HPM_CALL(ctx, 2, sort_rec(ctx, HPM_ARG(ctx, node->right), 0));
    HPM_CALL(ctx, 3, merge_rec(ctx, HPM_ARG(ctx, node), HPM_ARG(ctx, ascending)));
  }
  HPM_BODY_END(ctx);
}

}  // namespace

void bitonic_register_types(ti::TypeTable& table) {
  ti::StructBuilder<BitonicNode> b(table, "bitonic_node");
  HPM_TI_FIELD(b, BitonicNode, value);
  HPM_TI_FIELD(b, BitonicNode, left);
  HPM_TI_FIELD(b, BitonicNode, right);
  b.commit();
}

std::uint64_t bitonic_block_count(int log2_leaves) {
  return (2ull << log2_leaves) - 1;
}

void bitonic_program(mig::MigContext& ctx, int log2_leaves, std::uint64_t seed,
                     BitonicResult* out) {
  HPM_FUNCTION(ctx);
  BitonicNode* root = nullptr;
  std::uint64_t sum_before = 0;
  HPM_LOCAL(ctx, root);
  HPM_LOCAL(ctx, sum_before);
  HPM_BODY(ctx);
  {
    Rng rng(seed);
    root = build_tree(ctx, log2_leaves, rng);
  }
  sum_before = leaf_sum(root);
  HPM_CALL(ctx, 1, sort_rec(ctx, HPM_ARG(ctx, root), 1));
  {
    int prev = -2147483647 - 1;
    std::uint64_t sum_after = 0;
    out->sorted = check_sorted(root, &prev, &sum_after);
    out->sum_before = sum_before;
    out->sum_after = sum_after;
    out->leaves = 1u << log2_leaves;
    out->done = true;
  }
  free_tree(ctx, root);
  HPM_BODY_END(ctx);
}

}  // namespace hpm::apps
