// Random-graph workload generator for property-based testing and
// complexity benchmarks.
//
// Generates arbitrary directed heap graphs — including self-loops,
// shared nodes, long chains, and unreachable islands — over a node type
// that exercises mixed primitive kinds plus a small pointer array. The
// same (seed, size, shape) always builds the same graph, so source and
// verification sides agree without communicating.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mig/context.hpp"

namespace hpm::apps {

struct RandNode {
  long tag;
  double weight;
  short flavor;
  RandNode* out[4];
};

void workload_register_types(ti::TypeTable& table);

struct GraphShape {
  std::uint32_t nodes = 100;
  double edge_density = 0.6;   ///< probability each out[] slot is non-null
  double share_bias = 0.5;     ///< probability an edge targets an earlier node
  bool allow_self_loops = true;
};

/// Build a random graph on the context's migratable heap; returns every
/// node (index = creation order). Node 0 is the conventional root.
std::vector<RandNode*> build_random_graph(mig::MigContext& ctx, std::uint64_t seed,
                                          const GraphShape& shape);

/// Deterministic fingerprint of the graph reachable from `root`:
/// BFS order over (tag, weight bits, flavor, edge structure). Two
/// isomorphic-with-identical-payload graphs produce equal fingerprints;
/// any duplication, lost sharing, or payload corruption changes it.
std::uint64_t graph_fingerprint(const RandNode* root);

}  // namespace hpm::apps
