// The linpack benchmark (netlib C version, solving Ax = b) transformed
// into a migratable program — the paper's computation-intensive workload.
//
// MSR profile (paper §4.2): a handful of very large memory blocks (the
// n x n matrix dominates), no dynamic allocation during the solve, so
// collection/restoration cost is governed by the encode/decode term
// O(sum Di) while the MSRLT search/update terms stay constant as n grows.
//
// Annotation layout: poll-points sit in the outer column loops of dgefa
// and dgesl — NOT in daxpy/idamax/dscal, the "small kernels invoked many
// times" the paper warns about (§4.3). The kernels stay plain functions;
// bench/overhead_pollpoints quantifies what happens if you ignore that
// advice.
#pragma once

#include <cstdint>

#include "mig/annotate.hpp"

namespace hpm::apps {

struct LinpackResult {
  bool done = false;
  int n = 0;
  double residual = 0;        ///< max |Ax - b| over the solution
  double normalized = 0;      ///< residual / (n * norm(A) * eps)
  double mflops_proxy = 0;    ///< operations / solve-seconds (rough)
  [[nodiscard]] bool ok() const noexcept { return done && normalized < 10.0; }
};

/// No extra types needed beyond primitives; provided for symmetry with
/// the other workloads.
void linpack_register_types(ti::TypeTable& table);

/// Run the full benchmark: generate, factor (dgefa), solve (dgesl),
/// verify. Writes into *out only when it completes (i.e. on the
/// destination after a migration, or on the source if none happens).
void linpack_program(mig::MigContext& ctx, int n, std::uint64_t seed, LinpackResult* out);

/// Total live bytes the linpack program migrates for a given n (matrix +
/// vectors + pivots), under the native layout. Used by Figure 2(a).
std::uint64_t linpack_live_bytes(int n);

}  // namespace hpm::apps
