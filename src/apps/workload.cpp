#include "apps/workload.hpp"

#include <bit>
#include <unordered_map>

#include "ti/describe.hpp"

namespace hpm::apps {

void workload_register_types(ti::TypeTable& table) {
  ti::StructBuilder<RandNode> b(table, "rand_node");
  HPM_TI_FIELD(b, RandNode, tag);
  HPM_TI_FIELD(b, RandNode, weight);
  HPM_TI_FIELD(b, RandNode, flavor);
  HPM_TI_FIELD(b, RandNode, out);
  b.commit();
}

std::vector<RandNode*> build_random_graph(mig::MigContext& ctx, std::uint64_t seed,
                                          const GraphShape& shape) {
  Rng rng(seed);
  std::vector<RandNode*> nodes;
  nodes.reserve(shape.nodes);
  for (std::uint32_t i = 0; i < shape.nodes; ++i) {
    RandNode* n = ctx.heap_alloc<RandNode>(1, "rand");
    n->tag = static_cast<long>(rng.next_below(1u << 30));
    n->weight = rng.next_double() * 2e6 - 1e6;
    n->flavor = static_cast<short>(rng.next_below(1u << 15));
    for (auto& e : n->out) e = nullptr;
    nodes.push_back(n);
  }
  for (std::uint32_t i = 0; i < shape.nodes; ++i) {
    for (int e = 0; e < 4; ++e) {
      if (!rng.next_bool(shape.edge_density)) continue;
      std::uint32_t target;
      if (i > 0 && rng.next_bool(shape.share_bias)) {
        target = static_cast<std::uint32_t>(rng.next_below(i));  // backward: sharing/cycles
      } else {
        target = static_cast<std::uint32_t>(rng.next_below(shape.nodes));
      }
      if (!shape.allow_self_loops && target == i) continue;
      nodes[i]->out[e] = nodes[target];
    }
  }
  return nodes;
}

std::uint64_t graph_fingerprint(const RandNode* root) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 0x100000001B3ull;
    }
  };
  if (root == nullptr) {
    mix(0xDEAD);
    return h;
  }
  // BFS with discovery-order numbering: structure is captured as the
  // sequence of (payload, target-number) tuples, which is identical for
  // two graphs iff they are isomorphic under discovery order with equal
  // payloads.
  std::unordered_map<const RandNode*, std::uint64_t> order;
  std::vector<const RandNode*> queue{root};
  order.emplace(root, 0);
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const RandNode* n = queue[qi];
    mix(static_cast<std::uint64_t>(n->tag));
    mix(std::bit_cast<std::uint64_t>(n->weight));
    mix(static_cast<std::uint64_t>(n->flavor));
    for (const RandNode* t : n->out) {
      if (t == nullptr) {
        mix(0xFFFFFFFFFFFFFFFFull);
        continue;
      }
      auto [it, inserted] = order.emplace(t, order.size());
      if (inserted) queue.push_back(t);
      mix(it->second);
    }
  }
  mix(order.size());
  return h;
}

}  // namespace hpm::apps
