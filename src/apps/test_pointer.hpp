// The test_pointer program — the paper's synthetic pointer-structure
// workload.
//
// Builds, in one process image, every pointer shape the paper lists:
//   * a binary tree structure,
//   * a pointer to an integer,
//   * a pointer to an array of 10 integers,
//   * a pointer to an array of 10 pointers to integers,
//   * a tree-like (DAG) structure with shared nodes and a cycle — the
//     `first/last/link` example of Figure 1,
// plus interior pointers into the middle of arrays. After migration the
// program checks structural invariants that only hold if collection and
// restoration preserved sharing, cycles, and interior offsets exactly —
// "all memory blocks and pointers are collected and restored without
// duplication" (§4.1).
#pragma once

#include <cstdint>

#include "mig/annotate.hpp"

namespace hpm::apps {

/// The paper's Figure 1 struct: `struct node { float data; node* link; };`
struct ListNode {
  float data;
  ListNode* link;
};

/// Binary tree node with a payload on every vertex.
struct TreeNode {
  double weight;
  long depth_tag;
  TreeNode* left;
  TreeNode* right;
};

struct TestPointerResult {
  bool done = false;
  bool tree_ok = false;        ///< tree values and shape survived
  bool scalar_ptr_ok = false;  ///< int* target and value survived
  bool array_ptr_ok = false;   ///< pointer-to-array of 10 ints
  bool ptr_array_ok = false;   ///< array of 10 int*, with sharing
  bool dag_ok = false;         ///< shared nodes still shared (no duplication)
  bool cycle_ok = false;       ///< the link cycle is closed
  bool interior_ok = false;    ///< pointer into the middle of an array
  [[nodiscard]] bool ok() const noexcept {
    return done && tree_ok && scalar_ptr_ok && array_ptr_ok && ptr_array_ok && dag_ok &&
           cycle_ok && interior_ok;
  }
};

void test_pointer_register_types(ti::TypeTable& table);

/// Build all structures, migrate at the single poll-point (if triggered),
/// verify on the completing side.
void test_pointer_program(mig::MigContext& ctx, std::uint64_t seed, TestPointerResult* out);

}  // namespace hpm::apps
