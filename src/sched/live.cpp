#include "sched/live.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"

namespace hpm::sched {

LiveCluster::LiveCluster(int nodes, RegisterTypes register_types)
    : register_types_(std::move(register_types)), nodes_(static_cast<std::size_t>(nodes)) {
  if (nodes < 1) throw Error("LiveCluster needs at least one node");
  if (!register_types_) throw Error("LiveCluster needs a register_types callback");
}

LiveCluster::~LiveCluster() {
  shutdown_.store(true);
  cv_.notify_all();
  for (Node& node : nodes_) {
    if (node.worker.joinable()) node.worker.join();
  }
  if (balancer_.joinable()) balancer_.join();
}

int LiveCluster::submit(Program program, int node) {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) {
    throw Error("submit: unknown node " + std::to_string(node));
  }
  std::unique_ptr<Job> job;
  int id;
  {
    std::lock_guard lk(mu_);
    id = static_cast<int>(jobs_total_++);
    reports_.push_back(JobReport{});
    running_ctx_.push_back(nullptr);
    pending_target_.push_back(-1);
    job_location_.push_back(node);
    job = std::make_unique<Job>();
    job->id = id;
    job->program = std::move(program);
    nodes_[node].queue.push_back(std::move(job));
  }
  cv_.notify_all();
  return id;
}

void LiveCluster::start() {
  std::lock_guard lk(mu_);
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].worker = std::thread([this, i] { worker_loop(static_cast<int>(i)); });
  }
}

void LiveCluster::enqueue(int node_index, std::unique_ptr<Job> job) {
  {
    std::lock_guard lk(mu_);
    job_location_[job->id] = node_index;
    nodes_[node_index].queue.push_back(std::move(job));
  }
  cv_.notify_all();
}

void LiveCluster::migrate(int job_id, int to_node) {
  if (to_node < 0 || to_node >= static_cast<int>(nodes_.size())) {
    throw Error("migrate: unknown node " + std::to_string(to_node));
  }
  std::lock_guard lk(mu_);
  if (job_id < 0 || job_id >= static_cast<int>(jobs_total_)) {
    throw Error("migrate: unknown job " + std::to_string(job_id));
  }
  if (reports_[job_id].done) return;
  if (running_ctx_[job_id] != nullptr) {
    // Live: deliver the request; the job collects at its next poll.
    pending_target_[job_id] = to_node;
    running_ctx_[job_id]->request_migration();
    return;
  }
  // Queued (or in transit): requeue directly — no state to collect yet.
  const int from = job_location_[job_id];
  if (from < 0 || from == to_node) {
    pending_target_[job_id] = to_node;  // in transit: applied on landing
    return;
  }
  auto& queue = nodes_[from].queue;
  const auto it = std::find_if(queue.begin(), queue.end(),
                               [job_id](const auto& j) { return j->id == job_id; });
  if (it == queue.end()) {
    // Raced with a worker pop: leave the order pending; the worker's
    // pre-run check (or the job's next poll) will honor it.
    pending_target_[job_id] = to_node;
    return;
  }
  std::unique_ptr<Job> job = std::move(*it);
  queue.erase(it);
  job_location_[job_id] = to_node;
  nodes_[to_node].queue.push_back(std::move(job));
  cv_.notify_all();
}

void LiveCluster::worker_loop(int node_index) {
  for (;;) {
    std::unique_ptr<Job> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this, node_index] {
        return shutdown_.load() || !nodes_[node_index].queue.empty();
      });
      if (shutdown_.load()) return;
      job = std::move(nodes_[node_index].queue.front());
      nodes_[node_index].queue.pop_front();
    }

    ti::TypeTable types;
    register_types_(types);
    mig::MigContext ctx(types);
    {
      std::lock_guard lk(mu_);
      running_ctx_[job->id] = &ctx;
      job_location_[job->id] = node_index;
      if (pending_target_[job->id] >= 0 && pending_target_[job->id] != node_index) {
        ctx.request_migration();  // an order arrived while queued/in transit
      } else {
        pending_target_[job->id] = -1;
      }
    }
    try {
      if (!job->resume_stream.empty()) {
        Bytes stream = std::move(job->resume_stream);
        job->resume_stream.clear();
        ctx.begin_restore(std::move(stream));
      }
      job->program(ctx);
      std::lock_guard lk(mu_);
      running_ctx_[job->id] = nullptr;
      job->report.finished_on = node_index;
      job->report.done = true;
      reports_[job->id] = job->report;
      ++jobs_done_;
      cv_.notify_all();
    } catch (const mig::MigrationExit&) {
      int target;
      {
        std::lock_guard lk(mu_);
        running_ctx_[job->id] = nullptr;
        target = pending_target_[job->id];
        pending_target_[job->id] = -1;
        job_location_[job->id] = -1;
      }
      if (target < 0) target = node_index;  // defensive: land back home
      job->report.migrations += 1;
      job->report.moved_bytes += ctx.stream().size();
      job->resume_stream = ctx.stream();
      enqueue(target, std::move(job));
    } catch (...) {
      // Application failure: record and count the job as finished so
      // wait_all() cannot hang; `done` stays false to signal the failure.
      std::lock_guard lk(mu_);
      running_ctx_[job->id] = nullptr;
      job->report.finished_on = node_index;
      job->report.done = false;
      reports_[job->id] = job->report;
      ++jobs_done_;
      cv_.notify_all();
    }
  }
}

void LiveCluster::enable_auto_balance(double period_seconds) {
  if (balancer_.joinable()) return;
  balancer_ = std::thread([this, period_seconds] { balancer_loop(period_seconds); });
}

void LiveCluster::balancer_loop(double period_seconds) {
  while (!shutdown_.load()) {
    std::this_thread::sleep_for(std::chrono::duration<double>(period_seconds));
    int job_to_move = -1;
    int to_node = -1;
    {
      std::lock_guard lk(mu_);
      if (jobs_done_ == jobs_total_) continue;
      // Load = queued + running jobs per node.
      std::vector<int> load(nodes_.size(), 0);
      for (std::size_t n = 0; n < nodes_.size(); ++n) {
        load[n] = static_cast<int>(nodes_[n].queue.size());
      }
      for (std::size_t j = 0; j < jobs_total_; ++j) {
        if (running_ctx_[j] != nullptr && job_location_[j] >= 0) ++load[job_location_[j]];
      }
      std::size_t max_i = 0;
      std::size_t min_i = 0;
      for (std::size_t n = 1; n < load.size(); ++n) {
        if (load[n] > load[max_i]) max_i = n;
        if (load[n] < load[min_i]) min_i = n;
      }
      if (load[max_i] - load[min_i] < 2) continue;
      const int from = static_cast<int>(max_i);
      to_node = static_cast<int>(min_i);
      // Prefer a queued job (free move); otherwise order a live one.
      if (!nodes_[from].queue.empty()) {
        job_to_move = nodes_[from].queue.front()->id;
      } else {
        for (std::size_t j = 0; j < jobs_total_; ++j) {
          if (running_ctx_[j] != nullptr && job_location_[j] == from &&
              pending_target_[j] < 0) {
            job_to_move = static_cast<int>(j);
            break;
          }
        }
      }
    }
    if (job_to_move >= 0) migrate(job_to_move, to_node);
  }
}

std::vector<LiveCluster::JobReport> LiveCluster::wait_all() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return jobs_done_ == jobs_total_; });
  return reports_;
}

}  // namespace hpm::sched
