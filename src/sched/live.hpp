// LiveCluster: real process migration between worker "nodes" in one
// address space — the dynamic end of the paper's §5 vision, built on the
// actual collection/restoration engine (no simulation).
//
// Each node is a worker thread draining a job queue. A job is a
// re-runnable migratable program; when a migration order lands, the
// job's context receives a request, honors it at its next poll-point,
// and the collected stream is enqueued on the target node, where a fresh
// context restores and continues. migrate() is explicit (deterministic
// tests, external schedulers); enable_auto_balance() starts an internal
// balancer that moves work from the longest to the shortest queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mig/context.hpp"

namespace hpm::sched {

class LiveCluster {
 public:
  using RegisterTypes = std::function<void(ti::TypeTable&)>;
  using Program = std::function<void(mig::MigContext&)>;

  struct JobReport {
    int finished_on = -1;            ///< node that ran the job to completion
    std::uint32_t migrations = 0;    ///< hops the job made
    std::uint64_t moved_bytes = 0;   ///< total stream bytes shipped
    bool done = false;
  };

  LiveCluster(int nodes, RegisterTypes register_types);
  ~LiveCluster();

  LiveCluster(const LiveCluster&) = delete;
  LiveCluster& operator=(const LiveCluster&) = delete;

  /// Enqueue a job on `node`; returns its id. Jobs may be submitted
  /// before or after start().
  int submit(Program program, int node);

  /// Start the worker threads.
  void start();

  /// Order job `job_id` to migrate to `to_node` at its next poll-point.
  /// No-op if the job already finished. Safe from any thread.
  void migrate(int job_id, int to_node);

  /// Simple balancer: every `period_seconds`, move one queued-or-running
  /// job from the most-loaded node to the least-loaded one.
  void enable_auto_balance(double period_seconds);

  /// Block until every submitted job has completed; returns the reports.
  std::vector<JobReport> wait_all();

  [[nodiscard]] int nodes() const noexcept { return static_cast<int>(nodes_.size()); }

 private:
  struct Job {
    int id = -1;
    Program program;
    Bytes resume_stream;             ///< non-empty when resuming a migration
    JobReport report;
  };

  struct Node {
    std::deque<std::unique_ptr<Job>> queue;
    std::thread worker;
  };

  void worker_loop(int node_index);
  void balancer_loop(double period_seconds);
  void enqueue(int node_index, std::unique_ptr<Job> job);

  RegisterTypes register_types_;
  std::vector<Node> nodes_;

  std::mutex mu_;                        // guards queues, running state, reports
  std::condition_variable cv_;           // queue/run-state changes
  std::vector<JobReport> reports_;
  // Per-job live state, guarded by mu_: the running context (if any) and
  // a pending migration target (-1 = none).
  std::vector<mig::MigContext*> running_ctx_;
  std::vector<int> pending_target_;
  std::vector<int> job_location_;        // node index; -1 while in transit
  std::size_t jobs_done_ = 0;
  std::size_t jobs_total_ = 0;
  bool started_ = false;
  std::atomic<bool> shutdown_{false};
  std::thread balancer_;
};

}  // namespace hpm::sched
