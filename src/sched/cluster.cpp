#include "sched/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hpm::sched {

std::vector<MigrationOrder> LoadBalance::decide(const ClusterView& view) {
  std::vector<MigrationOrder> orders;
  if (view.hosts.size() < 2 || view.jobs.empty()) return orders;
  std::vector<double> load = view.host_load;

  // Repeatedly relieve the most loaded host while it pays off. Each order
  // updates the working copy of the loads so one tick cannot thrash.
  std::vector<bool> moved(view.jobs.size(), false);
  for (;;) {
    const auto max_it = std::max_element(load.begin(), load.end());
    const auto min_it = std::min_element(load.begin(), load.end());
    const int src = static_cast<int>(max_it - load.begin());
    const int dst = static_cast<int>(min_it - load.begin());
    if (src == dst || *max_it <= *min_it * imbalance_ + 1e-12) break;

    // Candidate: the job on `src` with the smallest freeze cost whose
    // completion improves enough. Moving small state first mirrors the
    // paper's observation that migration cost tracks live data volume.
    std::size_t best = view.jobs.size();
    double best_cost = 0;
    for (std::size_t j = 0; j < view.jobs.size(); ++j) {
      const JobView& job = view.jobs[j];
      if (job.host != src || moved[j]) continue;
      // Rough processor-sharing estimate: a job finishes roughly when its
      // host's backlog drains, so compare the backlog it would experience
      // staying versus moving (plus its freeze time in transit).
      const double t_stay = load[src];
      const double t_move =
          load[dst] + job.remaining / view.hosts[dst].speed + job.freeze_cost;
      const double payoff = t_stay - t_move;
      if (payoff > payoff_ * job.freeze_cost) {
        if (best == view.jobs.size() || job.freeze_cost < best_cost) {
          best = j;
          best_cost = job.freeze_cost;
        }
      }
    }
    if (best == view.jobs.size()) break;
    const JobView& job = view.jobs[best];
    orders.push_back(MigrationOrder{job.job, dst});
    moved[best] = true;
    const double share = job.remaining / view.hosts[src].speed;
    load[src] -= share;
    load[dst] += job.remaining / view.hosts[dst].speed;
  }
  return orders;
}

SimResult ClusterSim::run(const std::vector<JobSpec>& jobs, Policy& policy, double dt,
                          double scheduler_period, double horizon) const {
  if (hosts_.empty()) throw Error("ClusterSim: no hosts");
  for (const JobSpec& j : jobs) {
    if (j.initial_host < 0 || j.initial_host >= static_cast<int>(hosts_.size())) {
      throw Error("ClusterSim: job '" + j.name + "' submitted to unknown host");
    }
    if (j.work <= 0) throw Error("ClusterSim: job '" + j.name + "' has no work");
  }

  struct JobState {
    double remaining = 0;
    int host = -1;          // -1 = not arrived or in transit
    double unfreeze_at = 0; // when in transit: arrival time on target
    int target = -1;
    bool done = false;
    double finish = 0;
  };
  std::vector<JobState> state(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) state[i].remaining = jobs[i].work;

  SimResult result;
  result.host_busy_seconds.assign(hosts_.size(), 0.0);
  result.finish_times.assign(jobs.size(), 0.0);

  double now = 0;
  double next_tick = 0;
  std::size_t done_count = 0;

  while (done_count < jobs.size()) {
    if (now > horizon) throw Error("ClusterSim: horizon exceeded (livelock?)");

    // Arrivals and unfreezes.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobState& s = state[i];
      if (s.done || s.host >= 0) continue;
      if (s.target >= 0) {  // in transit
        if (now + 1e-12 >= s.unfreeze_at) {
          s.host = s.target;
          s.target = -1;
        }
      } else if (now + 1e-12 >= jobs[i].arrival) {
        s.host = jobs[i].initial_host;
      }
    }

    // Scheduler tick.
    if (now + 1e-12 >= next_tick) {
      next_tick += scheduler_period;
      ClusterView view;
      view.now = now;
      view.hosts = hosts_;
      view.host_load.assign(hosts_.size(), 0.0);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobState& s = state[i];
        if (s.done || s.host < 0) continue;
        JobView jv;
        jv.job = i;
        jv.host = s.host;
        jv.remaining = s.remaining;
        jv.freeze_cost = model_.freeze_seconds(jobs[i]);
        view.jobs.push_back(jv);
        view.host_load[s.host] += s.remaining / hosts_[s.host].speed;
      }
      for (const MigrationOrder& order : policy.decide(view)) {
        if (order.job >= jobs.size()) throw Error("policy ordered an unknown job");
        if (order.to_host < 0 || order.to_host >= static_cast<int>(hosts_.size())) {
          throw Error("policy ordered migration to an unknown host");
        }
        JobState& s = state[order.job];
        if (s.done || s.host < 0 || s.host == order.to_host) continue;
        const double freeze = model_.freeze_seconds(jobs[order.job]);
        s.host = -1;
        s.target = order.to_host;
        s.unfreeze_at = now + freeze;
        result.total_frozen_seconds += freeze;
        ++result.migrations;
      }
    }

    // Advance compute by dt under per-host processor sharing.
    std::vector<int> occupancy(hosts_.size(), 0);
    for (const JobState& s : state) {
      if (!s.done && s.host >= 0) ++occupancy[s.host];
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobState& s = state[i];
      if (s.done || s.host < 0) continue;
      const double rate = hosts_[s.host].speed / occupancy[s.host];
      const double progress = rate * dt;
      result.host_busy_seconds[s.host] += dt / occupancy[s.host];
      if (s.remaining <= progress) {
        // Completes mid-step; credit the exact finish time.
        s.finish = now + s.remaining / rate;
        s.remaining = 0;
        s.done = true;
        ++done_count;
        result.finish_times[i] = s.finish;
      } else {
        s.remaining -= progress;
      }
    }
    now += dt;
  }

  double turnaround_sum = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    result.makespan = std::max(result.makespan, result.finish_times[i]);
    turnaround_sum += result.finish_times[i] - jobs[i].arrival;
  }
  result.mean_turnaround = turnaround_sum / static_cast<double>(jobs.size());
  return result;
}

}  // namespace hpm::sched
