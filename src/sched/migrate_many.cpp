// migrate_many: N real migrations multiplexed over one shared channel.
//
// One FrameRouter per endpoint owns the shared duplex channel; each job's
// SessionWiring opens routed ports on both routers, so a connect() during
// resume bumps the session's epoch on BOTH ends before any new-epoch
// frame can be sent. The per-session protocol itself is exactly the
// exclusive-channel one (mig::run_routed_migration).
//
// The FleetOptions overload adds the failure-containment ring around the
// multiplexing: admission control (a bounded session table that answers
// Busy instead of queueing), per-session supervision (heartbeats +
// adaptive deadlines + targeted cancellation of wedged sessions), and
// quarantine (a job whose driver keeps throwing is Poisoned instead of
// retried forever). Session ids are NEVER reused across a job's retry
// attempts — a cancelled id is poisoned permanently at the routers, so a
// retry gets a fresh id while outcome rows keep the submission-order id.
#include "sched/cluster.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "mig/endpoint_util.hpp"
#include "mig/frame_router.hpp"
#include "net/factory.hpp"
#include "obs/metrics.hpp"

namespace hpm::sched {

namespace {

std::uint64_t wall_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* session_status_name(SessionStatus status) noexcept {
  switch (status) {
    case SessionStatus::Completed: return "completed";
    case SessionStatus::Busy: return "busy";
    case SessionStatus::Poisoned: return "poisoned";
  }
  return "?";
}

std::vector<SessionOutcome> migrate_many(const std::vector<SessionJob>& jobs,
                                         net::Transport transport) {
  return migrate_many(jobs, transport, FleetOptions{});
}

std::vector<SessionOutcome> migrate_many(const std::vector<SessionJob>& jobs,
                                         net::Transport transport,
                                         const FleetOptions& fleet) {
  if (transport == net::Transport::File) {
    throw MigrationError(
        "migrate_many needs a duplex transport (Memory or Socket); File has "
        "no rendezvous to multiplex");
  }
  std::vector<SessionOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  // --- admission: a bounded table, filled in submission order ------------
  // Deterministic by design: whether job i is admitted depends only on the
  // jobs before it, never on scheduling races, so rejection is fair and a
  // test can predict exactly which submissions hear Busy.
  std::vector<bool> admitted(jobs.size(), true);
  {
    std::size_t table = 0;
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const bool slot_ok = fleet.max_sessions == 0 || table < fleet.max_sessions;
      const bool bytes_ok = fleet.byte_budget == 0 ||
                            bytes + jobs[i].est_state_bytes <= fleet.byte_budget;
      if (slot_ok && bytes_ok) {
        ++table;
        bytes += jobs[i].est_state_bytes;
      } else {
        admitted[i] = false;
        outcomes[i].session_id = static_cast<std::uint32_t>(i + 1);
        outcomes[i].status = SessionStatus::Busy;
        obs::Registry::process().counter("sched.fleet.busy_rejections").add(1);
      }
    }
  }

  net::ChannelPair channels = net::make_channel_pair(transport, {});
  std::shared_ptr<void> keep(std::move(channels.listener));
  const auto src_router =
      std::make_shared<mig::FrameRouter>(std::move(channels.source), keep);
  const auto dst_router =
      std::make_shared<mig::FrameRouter>(std::move(channels.destination), keep);

  std::unique_ptr<mig::SessionSupervisor> supervisor;
  if (fleet.supervise) {
    supervisor = std::make_unique<mig::SessionSupervisor>(fleet.liveness);
    supervisor->attach(src_router, dst_router);
  }

  std::vector<std::exception_ptr> errors(jobs.size());
  std::vector<std::thread> drivers;
  drivers.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!admitted[i]) continue;
    drivers.emplace_back([&, i] {
      outcomes[i].session_id = static_cast<std::uint32_t>(i + 1);
      int failures = 0;
      for (int attempt = 0;; ++attempt) {
        // A poisoned router binding is permanent, so every retry attempt
        // runs under a FRESH session id; the outcome row keeps the
        // submission-order id regardless.
        const auto id = static_cast<std::uint32_t>(
            i + 1 + static_cast<std::size_t>(attempt) * jobs.size());
        mig::RunOptions options = jobs[i].options;
        std::shared_ptr<net::DeadlinePolicy> policy = options.deadline_policy;
        if (supervisor != nullptr && policy == nullptr) {
          // Each session gets its own adaptive policy: the supervisor's
          // heartbeat RTTs retune this session's deadlines, not a global.
          policy = net::DeadlinePolicy::adaptive(fleet.liveness.rtt);
          options.deadline_policy = policy;
        }
        if (options.txn_id == 0) {
          // Same derivation run_routed_migration would use — fixed here
          // so the supervisor's registry can show the txn it watches.
          options.txn_id = (wall_clock_ns() << 10) | (id & 0x3FFu);
        }
        const auto token = std::make_shared<mig::CancelToken>();
        mig::SessionWiring wiring;
        wiring.session_id = id;
        // Fault scripts target the first epoch only: the resumed binding
        // must be able to finish the transfer.
        auto first_epoch = std::make_shared<std::atomic<bool>>(true);
        const std::int64_t sever = jobs[i].sever_after_frames;
        const std::int64_t stall = jobs[i].stall_after_frames;
        wiring.connect = [src_router, dst_router, id, first_epoch, sever, stall,
                          token] {
          mig::PortPair pair;
          pair.source = src_router->open(id);
          pair.destination = dst_router->open(id);
          if (first_epoch->exchange(false)) {
            if (sever >= 0) {
              pair.source = std::make_unique<mig::SeveringPort>(
                  std::move(pair.source), static_cast<std::uint32_t>(sever));
            } else if (stall >= 0) {
              pair.source = std::make_unique<mig::BlackholePort>(
                  std::move(pair.source), static_cast<std::uint32_t>(stall), token);
            }
          }
          return pair;
        };
        if (options.failover.enabled()) {
          // A supervisor-cancelled session's binding is poisoned for good
          // (the router refuses fresh epochs), so the standby dials under
          // a DERIVED session id far outside the retry-id sequence: the
          // failover escapes the quarantined binding instead of inheriting
          // its wedge. Candidate k of session `id` gets a deterministic id
          // in a reserved high band.
          wiring.connect_standby = [src_router, dst_router, id](std::size_t k) {
            const std::uint32_t sid =
                (id & 0x00FFFFFFu) | 0x40000000u |
                (static_cast<std::uint32_t>(k + 1) << 24);
            mig::PortPair pair;
            pair.source = src_router->open(sid);
            pair.destination = dst_router->open(sid);
            return pair;
          };
        }
        if (supervisor != nullptr) {
          mig::SessionHooks hooks;
          hooks.txn_id = options.txn_id;
          hooks.deadline = policy;
          hooks.token = token;
          // Frames delivered by EITHER router: chunk flow shows up on the
          // destination's counter, acks and commit traffic on the source's.
          hooks.progress = [src_router, dst_router, id] {
            return src_router->delivered(id) + dst_router->delivered(id);
          };
          supervisor->register_session(id, std::move(hooks));
        }
        try {
          outcomes[i].report = mig::run_routed_migration(options, wiring);
          outcomes[i].status = SessionStatus::Completed;
          if (supervisor != nullptr) supervisor->deregister(id);
          return;
        } catch (...) {
          if (supervisor != nullptr) supervisor->deregister(id);
          ++failures;
          if (fleet.max_job_failures <= 0) {
            // Legacy contract: the first driver failure propagates after
            // every other session has finished.
            errors[i] = std::current_exception();
            return;
          }
          outcomes[i].failure_causes.push_back(
              "attempt " + std::to_string(failures) + ": " +
              mig::exception_text(std::current_exception()));
          if (failures >= fleet.max_job_failures) {
            outcomes[i].status = SessionStatus::Poisoned;
            obs::Registry::process().counter("sched.fleet.poisoned").add(1);
            // Nothing may reuse the quarantined job's last id either.
            src_router->poison(id, "job quarantined after repeated failures");
            dst_router->poison(id, "job quarantined after repeated failures");
            return;
          }
          obs::Registry::process().counter("sched.fleet.job_retries").add(1);
        }
      }
    });
  }
  for (std::thread& t : drivers) t.join();

  if (supervisor != nullptr) {
    // Final registry snapshot (normally empty — every session
    // deregistered) so `hpmtool sessions --live` never reads a torn file,
    // then stop the sweep before the routers it pings are torn down.
    if (!fleet.liveness.snapshot_path.empty()) {
      supervisor->write_snapshot(fleet.liveness.snapshot_path);
    }
    supervisor->stop();
  }

  // All sessions are done: tear the shared wire down before rethrowing so
  // a failing session cannot leak the routers' pump threads.
  src_router->shutdown();
  dst_router->shutdown();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return outcomes;
}

}  // namespace hpm::sched
