// migrate_many: N real migrations multiplexed over one shared channel.
//
// One FrameRouter per endpoint owns the shared duplex channel; each job's
// SessionWiring opens routed ports on both routers, so a connect() during
// resume bumps the session's epoch on BOTH ends before any new-epoch
// frame can be sent. The per-session protocol itself is exactly the
// exclusive-channel one (mig::run_routed_migration).
#include "sched/cluster.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "mig/frame_router.hpp"
#include "net/factory.hpp"

namespace hpm::sched {

std::vector<SessionOutcome> migrate_many(const std::vector<SessionJob>& jobs,
                                         net::Transport transport) {
  if (transport == net::Transport::File) {
    throw MigrationError(
        "migrate_many needs a duplex transport (Memory or Socket); File has "
        "no rendezvous to multiplex");
  }
  std::vector<SessionOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  net::ChannelPair channels = net::make_channel_pair(transport, {});
  std::shared_ptr<void> keep(std::move(channels.listener));
  const auto src_router =
      std::make_shared<mig::FrameRouter>(std::move(channels.source), keep);
  const auto dst_router =
      std::make_shared<mig::FrameRouter>(std::move(channels.destination), keep);

  std::vector<std::exception_ptr> errors(jobs.size());
  std::vector<std::thread> drivers;
  drivers.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    drivers.emplace_back([&, i] {
      const auto id = static_cast<std::uint32_t>(i + 1);
      outcomes[i].session_id = id;
      try {
        mig::SessionWiring wiring;
        wiring.session_id = id;
        // The severance is scripted against the first epoch only: the
        // resumed binding must be able to finish the transfer.
        auto first_epoch = std::make_shared<std::atomic<bool>>(true);
        const std::int64_t sever = jobs[i].sever_after_frames;
        wiring.connect = [src_router, dst_router, id, first_epoch, sever] {
          mig::PortPair pair;
          pair.source = src_router->open(id);
          pair.destination = dst_router->open(id);
          if (sever >= 0 && first_epoch->exchange(false)) {
            pair.source = std::make_unique<mig::SeveringPort>(
                std::move(pair.source), static_cast<std::uint32_t>(sever));
          }
          return pair;
        };
        outcomes[i].report = mig::run_routed_migration(jobs[i].options, wiring);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& t : drivers) t.join();

  // All sessions are done: tear the shared wire down before rethrowing so
  // a failing session cannot leak the routers' pump threads.
  src_router->shutdown();
  dst_router->shutdown();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return outcomes;
}

}  // namespace hpm::sched
