// Migration scheduler + cluster simulator (the paper's §5 future work:
// "a scheduler which can make optimal decisions on when and where to
// migrate", and the intro's motivation that migration improves
// application performance and environment-wide efficiency).
//
// A deterministic time-stepped simulation: hosts run their resident jobs
// under processor sharing; a policy examines the cluster at scheduler
// ticks and orders migrations; a migrating job freezes for
// Collect + Tx + Restore seconds as predicted by a cost model whose
// coefficients are calibrated from this library's own measured
// benchmarks (bench/table1_migration, bench/complexity_model).
//
// DEPRECATED as a public include path for the fleet API: embedders
// should include hpm/migrate.hpp (or hpm/hpm.hpp), which re-exports
// migrate_many / SessionJob / SessionOutcome / FleetOptions into the
// top-level hpm namespace. The simulation API (Policy, simulate, ...)
// is internal and may be reorganized freely.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mig/coordinator.hpp"
#include "mig/supervisor.hpp"
#include "net/simnet.hpp"

namespace hpm::sched {

struct HostSpec {
  std::string name;
  double speed = 1.0;  ///< relative compute rate (1.0 = reference host)
};

struct JobSpec {
  std::string name;
  double work = 1.0;        ///< seconds of compute on a speed-1.0 host
  double arrival = 0.0;     ///< simulation time the job appears
  int initial_host = 0;     ///< where it is submitted
  std::uint64_t live_bytes = 1 << 20;  ///< migratable state volume
  std::uint64_t blocks = 1000;         ///< MSR node count
};

/// Predicts the freeze time of one migration from the job's MSR profile.
struct CostModel {
  net::SimulatedLink link = net::SimulatedLink::ethernet_100mbps();
  double collect_s_per_block = 5.0e-7;
  double collect_s_per_byte = 5.5e-9;
  double restore_s_per_block = 1.2e-6;
  double restore_s_per_byte = 4.8e-9;

  [[nodiscard]] double freeze_seconds(const JobSpec& job) const noexcept {
    return collect_s_per_block * static_cast<double>(job.blocks) +
           collect_s_per_byte * static_cast<double>(job.live_bytes) +
           link.transfer_seconds(job.live_bytes) +
           restore_s_per_block * static_cast<double>(job.blocks) +
           restore_s_per_byte * static_cast<double>(job.live_bytes);
  }

  /// Coefficients measured on this library's own engines (see
  /// bench/complexity_model and EXPERIMENTS.md).
  static CostModel calibrated() { return CostModel{}; }
};

/// What a policy sees at a scheduler tick.
struct JobView {
  std::size_t job = 0;       ///< index into the submitted job list
  int host = -1;             ///< current host (-1 while frozen in transit)
  double remaining = 0;      ///< work seconds left (speed-1.0 host)
  double freeze_cost = 0;    ///< modeled migration freeze for this job
};

struct ClusterView {
  double now = 0;
  std::vector<HostSpec> hosts;
  std::vector<JobView> jobs;           ///< running jobs only
  std::vector<double> host_load;       ///< sum remaining/speed per host
};

struct MigrationOrder {
  std::size_t job = 0;
  int to_host = 0;
};

/// Scheduler policy: consulted at every scheduler tick.
class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual std::vector<MigrationOrder> decide(const ClusterView& view) = 0;
};

/// Baseline: jobs finish where they were submitted.
class NeverMigrate final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "never-migrate"; }
  std::vector<MigrationOrder> decide(const ClusterView&) override { return {}; }
};

/// Greedy load balancing: while the most- and least-loaded hosts differ
/// by more than `imbalance_factor`, move the smallest-state job whose
/// predicted completion improves by more than `payoff_factor` times its
/// freeze cost.
class LoadBalance final : public Policy {
 public:
  explicit LoadBalance(double imbalance_factor = 1.5, double payoff_factor = 2.0)
      : imbalance_(imbalance_factor), payoff_(payoff_factor) {}
  [[nodiscard]] std::string name() const override { return "load-balance"; }
  std::vector<MigrationOrder> decide(const ClusterView& view) override;

 private:
  double imbalance_;
  double payoff_;
};

struct SimResult {
  double makespan = 0;             ///< last completion time
  double mean_turnaround = 0;      ///< mean (finish - arrival)
  double total_frozen_seconds = 0; ///< time jobs spent migrating
  std::uint32_t migrations = 0;
  std::vector<double> host_busy_seconds;
  std::vector<double> finish_times;  ///< per job
};

/// --- concurrent real migrations over one shared channel ------------------

/// One migration submitted to migrate_many.
struct SessionJob {
  mig::RunOptions options;

  /// Deterministic mid-stream kill: cut this session's source-side port
  /// after it has carried this many frames on its FIRST epoch (-1 =
  /// never). The session then reconnects and resumes from the acked
  /// watermark while the other multiplexed sessions proceed untouched.
  std::int64_t sever_after_frames = -1;

  /// Deterministic mid-stream WEDGE: after this many port operations on
  /// the session's first epoch, its source port blackholes — sends
  /// vanish, recvs starve — while the shared channel stays healthy
  /// (-1 = never). Unlike a severance this produces no error for a
  /// deadline to catch; only the supervisor's progress watermark
  /// (FleetOptions::supervise) can detect and cancel it.
  std::int64_t stall_after_frames = -1;

  /// Declared state volume for FleetOptions::byte_budget admission
  /// (0 = counts only against max_sessions, not the byte budget).
  std::uint64_t est_state_bytes = 0;
};

/// Why a SessionOutcome's report does — or does not — exist.
enum class SessionStatus : std::uint8_t {
  Completed,  ///< the session ran; report holds its outcome
  Busy,       ///< rejected at admission (session table / byte budget full)
  Poisoned,   ///< quarantined after max_job_failures driver failures
};

const char* session_status_name(SessionStatus status) noexcept;

/// Result of one session driven by migrate_many.
struct SessionOutcome {
  std::uint32_t session_id = 0;  ///< 1-based, in submission order
  SessionStatus status = SessionStatus::Completed;
  mig::MigrationReport report;  ///< meaningful only when status == Completed
  /// One entry per failed driver attempt ("attempt 2: ..."), i.e.
  /// exceptions that escaped the protocol's own recovery. Distinct from
  /// report.failure_causes, which tracks transfer attempts INSIDE a run.
  std::vector<std::string> failure_causes;
};

/// Fleet-level policy for migrate_many: admission control, failure
/// quarantine, and per-session supervision (DESIGN.md §13).
struct FleetOptions {
  /// Concurrent-session cap (0 = unbounded). Jobs beyond the cap are
  /// rejected with SessionStatus::Busy in submission order — a full
  /// table answers "busy", it does not queue.
  std::size_t max_sessions = 0;

  /// Total admitted est_state_bytes cap (0 = unbounded).
  std::uint64_t byte_budget = 0;

  /// Driver failures (exceptions escaping run_routed_migration) a job
  /// may accrue before it is quarantined with SessionStatus::Poisoned.
  /// 0 = legacy semantics: the FIRST driver failure propagates out of
  /// migrate_many after all sessions finish.
  int max_job_failures = 0;

  /// Attach a SessionSupervisor to the shared channel: per-session
  /// heartbeats, adaptive deadlines (jobs without an explicit
  /// deadline_policy get a fresh adaptive one), and targeted
  /// cancellation of wedged sessions.
  bool supervise = false;

  /// Supervisor knobs (heartbeat cadence, miss budget, stall bound,
  /// RTT clamps, snapshot path) when supervise is true.
  mig::LivenessConfig liveness{};
};

/// Run every job as a concurrent migration session multiplexed over ONE
/// shared duplex channel pair (Memory or Socket; File has no duplex
/// rendezvous and throws). Session i+1 gets frame-router ports tagged
/// with its id on both ends; each runs the full pipelined transactional
/// protocol (mig::run_routed_migration), so journals land keyed by txn in
/// each job's journal_dir and per-session telemetry lands under
/// mig.session.<id>.*. Outcomes are returned in submission order; a
/// session that throws outside the protocol's own recovery propagates
/// after every other session has finished.
std::vector<SessionOutcome> migrate_many(const std::vector<SessionJob>& jobs,
                                         net::Transport transport);

/// The supervised flavour: same multiplexing, plus FleetOptions admission
/// control, failure quarantine, and (when fleet.supervise) a
/// SessionSupervisor watching every admitted session — heartbeat RTTs
/// feed each session's adaptive deadline policy, and a wedged session is
/// cancelled in place while its siblings finish untouched. The plain
/// overload is exactly migrate_many(jobs, transport, FleetOptions{}).
std::vector<SessionOutcome> migrate_many(const std::vector<SessionJob>& jobs,
                                         net::Transport transport,
                                         const FleetOptions& fleet);

/// Deterministic cluster simulation.
class ClusterSim {
 public:
  ClusterSim(std::vector<HostSpec> hosts, CostModel model)
      : hosts_(std::move(hosts)), model_(model) {}

  /// Run the job set under `policy`. `dt` is the integration step;
  /// `scheduler_period` is how often the policy is consulted. Throws
  /// hpm::Error if a job never completes within `horizon`.
  SimResult run(const std::vector<JobSpec>& jobs, Policy& policy, double dt = 1e-3,
                double scheduler_period = 0.25, double horizon = 1e6) const;

 private:
  std::vector<HostSpec> hosts_;
  CostModel model_;
};

}  // namespace hpm::sched
