// Debug helper: render byte buffers for diagnostics and test failure output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hpm {

using Bytes = std::vector<std::uint8_t>;

/// Classic 16-bytes-per-line hex + ASCII dump.
std::string hexdump(const void* data, std::size_t len, std::size_t max_bytes = 512);

inline std::string hexdump(const Bytes& b, std::size_t max_bytes = 512) {
  return hexdump(b.data(), b.size(), max_bytes);
}

}  // namespace hpm
