// Error hierarchy shared by every hpm module.
//
// All recoverable failures surface as exceptions derived from hpm::Error so
// callers can catch one base type at a subsystem boundary while tests can
// assert on the precise category.
#pragma once

#include <stdexcept>
#include <string>

namespace hpm {

/// Base class of every error thrown by the hpm library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed, truncated, or version-incompatible migration stream.
class WireError : public Error {
 public:
  using Error::Error;
};

/// Type-table inconsistency: unknown type id, signature mismatch,
/// illegal type construction.
class TypeError : public Error {
 public:
  using Error::Error;
};

/// MSR / MSRLT failure: unregistered address, duplicate block, pointer
/// into untracked memory.
class MsrError : public Error {
 public:
  using Error::Error;
};

/// A primitive value cannot be represented on the destination
/// architecture (e.g. a 64-bit long that overflows a 32-bit long).
class ConversionError : public Error {
 public:
  using Error::Error;
};

/// Transport-layer failure (socket, file channel, framing).
class NetError : public Error {
 public:
  using Error::Error;
};

/// A channel operation exceeded its configured deadline. Derives from
/// NetError so transport-boundary handlers treat it as one more
/// (retryable) transport failure, while tests can assert on the precise
/// category.
class TimeoutError : public NetError {
 public:
  using NetError::NetError;
};

/// The peer violated the migration protocol: duplicate or out-of-order
/// chunk sequence numbers, totals that disagree with what arrived,
/// messages outside the expected exchange. Derives from NetError so the
/// coordinator treats it as one more retryable transfer failure.
class ProtocolError : public NetError {
 public:
  using NetError::NetError;
};

/// The session was cancelled by its supervisor (SessionSupervisor poisons
/// the session's router bindings after declaring it wedged). Derives from
/// NetError so every blocking recv/send unwinds through the same
/// transport-failure paths a dead link would take — but the typed class
/// lets the chaos harness distinguish a targeted cancellation from an
/// organic network fault.
class CancelledError : public NetError {
 public:
  using NetError::NetError;
};

/// Injected process death (FaultKind::Kill): the endpoint "crashed" and
/// can run no recovery code of its own. Deliberately NOT a NetError —
/// the retry machinery must not absorb a crash as a transport fault; the
/// journal-recovery path owns it.
class KilledError : public Error {
 public:
  using Error::Error;
};

/// Migration-runtime misuse or failed migration protocol step.
class MigrationError : public Error {
 public:
  using Error::Error;
};

/// precc front-end: lexical or syntactic error in a declaration file.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// precc semantic check: the declaration uses a migration-unsafe feature.
class UnsafeFeatureError : public Error {
 public:
  using Error::Error;
};

}  // namespace hpm
