#include "common/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace hpm {

std::string hexdump(const void* data, std::size_t len, std::size_t max_bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::size_t shown = len < max_bytes ? len : max_bytes;
  std::string out;
  out.reserve(shown * 4);
  char line[24];
  for (std::size_t off = 0; off < shown; off += 16) {
    std::snprintf(line, sizeof line, "%06zx ", off);
    out += line;
    for (std::size_t i = 0; i < 16; ++i) {
      if (off + i < shown) {
        std::snprintf(line, sizeof line, "%02x ", p[off + i]);
        out += line;
      } else {
        out += "   ";
      }
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && off + i < shown; ++i) {
      const unsigned char c = p[off + i];
      out += std::isprint(c) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  if (shown < len) out += "... (" + std::to_string(len - shown) + " more bytes)\n";
  return out;
}

}  // namespace hpm
