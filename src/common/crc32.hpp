// CRC-32 (IEEE 802.3 polynomial, reflected) used to seal migration streams.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hpm {

/// Incremental CRC-32 accumulator.
///
/// The migration stream trailer stores `Crc32::finish(update(...))` over all
/// preceding bytes so a truncated or corrupted transfer is detected before
/// any block is materialized on the destination.
class Crc32 {
 public:
  /// Feed `len` bytes; returns the running (pre-finalization) state.
  void update(const void* data, std::size_t len) noexcept;

  /// Finalized CRC value of everything fed so far.
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

  /// One-shot convenience.
  static std::uint32_t of(const void* data, std::size_t len) noexcept;

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace hpm
