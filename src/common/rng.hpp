// Deterministic RNG used by workloads, tests, and property-based sweeps.
//
// We avoid std::mt19937 here so that random structure shapes are stable
// across standard libraries; splitmix64 is tiny and adequate for workload
// generation (not cryptography).
#pragma once

#include <cstdint>

namespace hpm {

/// splitmix64: fast, well-distributed, reproducible across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  std::uint32_t next_u32() noexcept { return static_cast<std::uint32_t>(next_u64() >> 32); }

  int next_int(int lo, int hi) noexcept {  // inclusive range
    return lo + static_cast<int>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool next_bool(double p_true = 0.5) noexcept { return next_double() < p_true; }

 private:
  std::uint64_t state_;
};

}  // namespace hpm
