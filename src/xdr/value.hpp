// Architecture-generic primitive values and machine-specific <-> canonical
// conversion.
//
// A PrimValue is the meaning of one primitive cell, independent of any
// layout. Collection reads cells out of (host or foreign-image) memory into
// PrimValues, the canonical codec moves PrimValues across the wire, and
// restoration writes PrimValues back into the destination layout — with
// explicit overflow detection when the destination type is narrower than
// the source value (e.g. a 64-bit `long` migrating to an ILP32 machine).
#pragma once

#include <cstdint>

#include "xdr/arch.hpp"
#include "xdr/wire.hpp"

namespace hpm::xdr {

/// One primitive value, tagged by kind. Integral values are held widened
/// to 64 bits; floating values as double (float -> double is exact).
struct PrimValue {
  PrimKind kind = PrimKind::Int;
  union {
    std::int64_t s;
    std::uint64_t u;
    double f;
  };

  static PrimValue of_signed(PrimKind k, std::int64_t v) {
    PrimValue p;
    p.kind = k;
    p.s = v;
    return p;
  }
  static PrimValue of_unsigned(PrimKind k, std::uint64_t v) {
    PrimValue p;
    p.kind = k;
    p.u = v;
    return p;
  }
  static PrimValue of_float(PrimKind k, double v) {
    PrimValue p;
    p.kind = k;
    p.f = v;
    return p;
  }

  /// Structural equality (bitwise for floats, so NaN payloads round-trip).
  bool identical(const PrimValue& other) const noexcept;
};

/// Read one primitive laid out per `arch` starting at `p`.
/// `p` is a raw byte pointer; no host alignment is assumed.
PrimValue read_raw(const std::uint8_t* p, const ArchDescriptor& arch, PrimKind k);

/// Write one primitive into `arch` layout at `p`.
/// Throws hpm::ConversionError if the value does not fit the destination
/// width (paper: values are assumed representable; we detect violations).
void write_raw(std::uint8_t* p, const ArchDescriptor& arch, PrimKind k, const PrimValue& v);

/// Read/write a raw pointer cell (an address-sized unsigned integer) in
/// `arch` layout. The MSR layer interprets the value.
std::uint64_t read_pointer_cell(const std::uint8_t* p, const ArchDescriptor& arch);
void write_pointer_cell(std::uint8_t* p, const ArchDescriptor& arch, std::uint64_t value);

/// Canonical stream codec for PrimValues (widths from canonical_size()).
void encode_canonical(Encoder& enc, const PrimValue& v);
PrimValue decode_canonical(Decoder& dec, PrimKind k);

}  // namespace hpm::xdr
