// Batched layout-conversion kernels for the staged (heterogeneous) XDR
// path. The staged restore walks a source-layout image leaf by leaf; when
// consecutive leaves are contiguous in both layouts and width-compatible,
// the per-scalar read_raw/write_prim round trip collapses into one run of
// these kernels: a memcpy when the byte orders agree, a fixed-width
// byteswap sweep when they differ. The loops are written so the compiler
// auto-vectorizes them (bswap over unaligned lanes via memcpy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace hpm::xdr {

inline void bswap16_run(std::uint8_t* dst, const std::uint8_t* src, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint16_t v;
    std::memcpy(&v, src + i * 2, 2);
    v = __builtin_bswap16(v);
    std::memcpy(dst + i * 2, &v, 2);
  }
}

inline void bswap32_run(std::uint8_t* dst, const std::uint8_t* src, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t v;
    std::memcpy(&v, src + i * 4, 4);
    v = __builtin_bswap32(v);
    std::memcpy(dst + i * 4, &v, 4);
  }
}

inline void bswap64_run(std::uint8_t* dst, const std::uint8_t* src, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v;
    std::memcpy(&v, src + i * 8, 8);
    v = __builtin_bswap64(v);
    std::memcpy(dst + i * 8, &v, 8);
  }
}

/// Reverse `count` lanes of `width` bytes (width in {2, 4, 8}).
inline void bswap_run(std::uint8_t* dst, const std::uint8_t* src, std::size_t count,
                      std::size_t width) {
  switch (width) {
    case 2: bswap16_run(dst, src, count); return;
    case 4: bswap32_run(dst, src, count); return;
    default: bswap64_run(dst, src, count); return;
  }
}

}  // namespace hpm::xdr
