#include "xdr/wire.hpp"

#include <bit>
#include <cstring>

#include "obs/metrics.hpp"

namespace hpm::xdr {

namespace {

template <typename T>
void put_be(Bytes& buf, T v) {
  for (std::size_t i = sizeof(T); i-- > 0;) {
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

/// Stream-granularity throughput instruments: one registry touch per
/// encoded/decoded stream keeps the per-field hot path untouched.
struct WireMetrics {
  obs::Counter& encode_bytes = obs::Registry::process().counter("xdr.encode.bytes");
  obs::Counter& encode_streams = obs::Registry::process().counter("xdr.encode.streams");
  obs::Counter& decode_bytes = obs::Registry::process().counter("xdr.decode.bytes");
  obs::Counter& decode_streams = obs::Registry::process().counter("xdr.decode.streams");
  obs::Histogram& encode_size =
      obs::Registry::process().histogram("xdr.encode.stream_bytes", obs::Unit::Bytes);

  static WireMetrics& get() {
    static WireMetrics m;
    return m;
  }
};

}  // namespace

Bytes Encoder::take() noexcept {
  if (!buf_.empty()) {
    WireMetrics& m = WireMetrics::get();
    m.encode_bytes.add(buf_.size());
    m.encode_streams.add(1);
    m.encode_size.record(static_cast<double>(buf_.size()));
  }
  return std::move(buf_);
}

Decoder::~Decoder() {
  if (pos_ > 0) {
    WireMetrics& m = WireMetrics::get();
    m.decode_bytes.add(pos_);
    m.decode_streams.add(1);
  }
}

void Encoder::put_u16(std::uint16_t v) {
  put_be(buf_, v);
  if (sink_) maybe_flush();
}
void Encoder::put_u32(std::uint32_t v) {
  put_be(buf_, v);
  if (sink_) maybe_flush();
}
void Encoder::put_u64(std::uint64_t v) {
  put_be(buf_, v);
  if (sink_) maybe_flush();
}

void Encoder::put_f32(float v) { put_u32(std::bit_cast<std::uint32_t>(v)); }
void Encoder::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::put_bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
  if (sink_) maybe_flush();
}

void Encoder::put_string(std::string_view s) {
  if (s.size() > 0xFFFFFFFFull) throw WireError("string too long to encode");
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(s.data(), s.size());
}

void Encoder::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_.size()) throw WireError("patch_u32 out of range");
  if (offset < flushed_) {
    throw WireError("patch_u32 below sink watermark: bytes already flushed");
  }
  for (std::size_t i = 0; i < 4; ++i) {
    buf_[offset + i] = static_cast<std::uint8_t>((v >> (8 * (3 - i))) & 0xFFu);
  }
}

void Encoder::set_sink(std::size_t chunk_bytes, SinkFn fn) {
  if (chunk_bytes == 0) throw WireError("sink chunk size must be positive");
  sink_chunk_ = chunk_bytes;
  flushed_ = buf_.size();  // only bytes written from here on are chunked
  sink_ = std::move(fn);
}

void Encoder::maybe_flush() {
  while (buf_.size() - flushed_ >= sink_chunk_) {
    sink_(std::span<const std::uint8_t>(buf_.data() + flushed_, sink_chunk_));
    flushed_ += sink_chunk_;
  }
}

void Encoder::flush_sink() {
  if (!sink_) return;
  maybe_flush();
  if (buf_.size() > flushed_) {
    sink_(std::span<const std::uint8_t>(buf_.data() + flushed_, buf_.size() - flushed_));
    flushed_ = buf_.size();
  }
  sink_ = nullptr;
  sink_chunk_ = 0;
}

void Decoder::need(std::size_t n) {
  while (pos_ + n > data_.size()) {
    if (refill_ && refill_(pos_ + n)) continue;
    throw WireError("truncated stream: need " + std::to_string(n) + " bytes at offset " +
                    std::to_string(pos_) + ", have " + std::to_string(data_.size() - pos_));
  }
}

std::uint8_t Decoder::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint8_t Decoder::peek_u8() {
  need(1);
  return data_[pos_];
}

std::uint16_t Decoder::get_u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Decoder::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

float Decoder::get_f32() { return std::bit_cast<float>(get_u32()); }
double Decoder::get_f64() { return std::bit_cast<double>(get_u64()); }

void Decoder::get_bytes(void* out, std::size_t len) {
  need(len);
  std::memcpy(out, data_.data() + pos_, len);
  pos_ += len;
}

std::string Decoder::get_string() {
  const std::uint32_t len = get_u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

}  // namespace hpm::xdr
