// Architecture descriptors: the "machine-specific format" side of the
// paper's layer-2 conversion.
//
// An ArchDescriptor captures everything the data collection / restoration
// mechanism needs to know about a computing platform: byte order, the size
// and alignment of each C primitive, and the pointer width. The paper's
// testbed pairs (DECstation 5000/120 Ultrix vs SPARCstation 20 Solaris;
// Ultra 5 pairs) are provided as presets, plus modern 64-bit hosts, so a
// single physical machine can materialize byte-exact foreign memory images
// (see src/memimg) and exercise truly heterogeneous conversion.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hpm::xdr {

/// The C primitive kinds the TI table distinguishes. `Pointer` is handled
/// separately by the MSR layer but its raw cell layout is described here.
enum class PrimKind : std::uint8_t {
  Bool = 0,
  Char,
  SChar,
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  LongLong,
  ULongLong,
  Float,
  Double,
};

inline constexpr std::size_t kNumPrimKinds = 14;

/// Integer index for PrimKind-indexed tables.
constexpr std::size_t prim_index(PrimKind k) noexcept { return static_cast<std::size_t>(k); }

/// Human-readable C spelling ("unsigned long", "double", ...).
std::string_view prim_name(PrimKind k) noexcept;

/// Value classification used by the conversion layer.
enum class PrimClass : std::uint8_t { Signed, Unsigned, Floating };
PrimClass prim_class(PrimKind k) noexcept;

/// Width of a primitive in the canonical (machine-independent) stream.
/// Canonical widths are the widest layout among supported platforms so a
/// value survives any round trip: 1 for char/bool, 2 short, 4 int/float,
/// 8 long / long long / double.
std::size_t canonical_size(PrimKind k) noexcept;

enum class ByteOrder : std::uint8_t { Little, Big };

/// Size + alignment of one primitive on a concrete architecture.
struct PrimLayout {
  std::uint8_t size = 0;
  std::uint8_t align = 0;
};

/// A complete description of a computation platform's data model.
struct ArchDescriptor {
  std::string name;
  ByteOrder order = ByteOrder::Little;
  std::array<PrimLayout, kNumPrimKinds> prim{};
  PrimLayout pointer{};

  [[nodiscard]] const PrimLayout& layout(PrimKind k) const noexcept {
    return prim[prim_index(k)];
  }
  [[nodiscard]] bool is_big_endian() const noexcept { return order == ByteOrder::Big; }

  /// Two descriptors with equal data models produce byte-identical block
  /// layouts; used to decide whether an image round trip is heterogeneous.
  bool same_data_model(const ArchDescriptor& other) const noexcept;
};

/// --- Presets -------------------------------------------------------------

/// ILP32 little-endian MIPS (DECstation 5000/120 running Ultrix — the
/// paper's migration source).
const ArchDescriptor& dec5000_ultrix();

/// ILP32 big-endian SPARC (SPARCstation 20 running Solaris 2.5 — the
/// paper's migration destination).
const ArchDescriptor& sparc20_solaris();

/// ILP32 big-endian UltraSPARC (Sun Ultra 5, Solaris — the paper's
/// homogeneous timing testbed).
const ArchDescriptor& ultra5_solaris();

/// LP64 little-endian x86-64 Linux.
const ArchDescriptor& x86_64_linux();

/// LP64 big-endian (POWER/SPARC64-style) — exercises 64-bit big-endian.
const ArchDescriptor& generic_be64();

/// ILP32 little-endian ARM with natural 8-byte double alignment.
const ArchDescriptor& arm32_linux();

/// ILP32 little-endian x86 — notable for aligning double to only 4 bytes,
/// which exercises struct-layout conversion beyond endianness and width.
const ArchDescriptor& i386_linux();

/// The architecture this process is actually running on (derived from the
/// compiler's own layouts; used as the default host descriptor).
const ArchDescriptor& native_arch();

/// Look a preset up by name (as carried in a stream header).
/// Throws hpm::TypeError if unknown.
const ArchDescriptor& arch_by_name(std::string_view name);

/// Names of all registered presets (for tests / CLI listings).
const std::array<std::string_view, 7>& arch_names();

}  // namespace hpm::xdr
