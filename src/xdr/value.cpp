#include "xdr/value.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <string>

namespace hpm::xdr {

namespace {

std::uint64_t load_uint(const std::uint8_t* p, std::size_t size, ByteOrder order) {
  std::uint64_t v = 0;
  if (order == ByteOrder::Big) {
    for (std::size_t i = 0; i < size; ++i) v = (v << 8) | p[i];
  } else {
    for (std::size_t i = size; i-- > 0;) v = (v << 8) | p[i];
  }
  return v;
}

void store_uint(std::uint8_t* p, std::size_t size, ByteOrder order, std::uint64_t v) {
  if (order == ByteOrder::Big) {
    for (std::size_t i = size; i-- > 0;) {
      p[i] = static_cast<std::uint8_t>(v & 0xFFu);
      v >>= 8;
    }
  } else {
    for (std::size_t i = 0; i < size; ++i) {
      p[i] = static_cast<std::uint8_t>(v & 0xFFu);
      v >>= 8;
    }
  }
}

std::int64_t sign_extend(std::uint64_t v, std::size_t size) {
  if (size >= 8) return static_cast<std::int64_t>(v);
  const std::uint64_t sign_bit = 1ull << (size * 8 - 1);
  if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  return static_cast<std::int64_t>(v);
}

[[noreturn]] void overflow(PrimKind k, const ArchDescriptor& arch, const std::string& repr) {
  throw hpm::ConversionError("value " + repr + " does not fit " + std::string(prim_name(k)) +
                             " (" + std::to_string(arch.layout(k).size) + " bytes) on " +
                             arch.name);
}

}  // namespace

bool PrimValue::identical(const PrimValue& other) const noexcept {
  if (kind != other.kind) return false;
  return u == other.u;  // bitwise: covers signed, unsigned, and NaN payloads
}

PrimValue read_raw(const std::uint8_t* p, const ArchDescriptor& arch, PrimKind k) {
  const std::size_t size = arch.layout(k).size;
  const std::uint64_t raw = load_uint(p, size, arch.order);
  switch (prim_class(k)) {
    case PrimClass::Floating:
      if (size == 4) {
        return PrimValue::of_float(k, std::bit_cast<float>(static_cast<std::uint32_t>(raw)));
      }
      return PrimValue::of_float(k, std::bit_cast<double>(raw));
    case PrimClass::Unsigned:
      return PrimValue::of_unsigned(k, raw);
    case PrimClass::Signed:
      return PrimValue::of_signed(k, sign_extend(raw, size));
  }
  return PrimValue::of_unsigned(k, raw);
}

void write_raw(std::uint8_t* p, const ArchDescriptor& arch, PrimKind k, const PrimValue& v) {
  const std::size_t size = arch.layout(k).size;
  switch (prim_class(k)) {
    case PrimClass::Floating: {
      std::uint64_t raw;
      if (size == 4) {
        const float narrowed = static_cast<float>(v.f);
        raw = std::bit_cast<std::uint32_t>(narrowed);
      } else {
        raw = std::bit_cast<std::uint64_t>(v.f);
      }
      store_uint(p, size, arch.order, raw);
      return;
    }
    case PrimClass::Unsigned: {
      if (size < 8) {
        const std::uint64_t max = (1ull << (size * 8)) - 1;
        if (v.u > max) overflow(k, arch, std::to_string(v.u));
      }
      store_uint(p, size, arch.order, v.u);
      return;
    }
    case PrimClass::Signed: {
      if (size < 8) {
        const std::int64_t max = static_cast<std::int64_t>((1ull << (size * 8 - 1)) - 1);
        const std::int64_t min = -max - 1;
        if (v.s > max || v.s < min) overflow(k, arch, std::to_string(v.s));
      }
      store_uint(p, size, arch.order, static_cast<std::uint64_t>(v.s));
      return;
    }
  }
}

std::uint64_t read_pointer_cell(const std::uint8_t* p, const ArchDescriptor& arch) {
  return load_uint(p, arch.pointer.size, arch.order);
}

void write_pointer_cell(std::uint8_t* p, const ArchDescriptor& arch, std::uint64_t value) {
  if (arch.pointer.size < 8) {
    const std::uint64_t max = (1ull << (arch.pointer.size * 8)) - 1;
    if (value > max) {
      throw hpm::ConversionError("pointer cell value exceeds " +
                                 std::to_string(arch.pointer.size) + "-byte pointer on " +
                                 arch.name);
    }
  }
  store_uint(p, arch.pointer.size, arch.order, value);
}

void encode_canonical(Encoder& enc, const PrimValue& v) {
  switch (canonical_size(v.kind)) {
    case 1:
      if (prim_class(v.kind) == PrimClass::Signed) {
        enc.put_i8(static_cast<std::int8_t>(v.s));
      } else {
        enc.put_u8(static_cast<std::uint8_t>(v.u));
      }
      return;
    case 2:
      if (prim_class(v.kind) == PrimClass::Signed) {
        enc.put_i16(static_cast<std::int16_t>(v.s));
      } else {
        enc.put_u16(static_cast<std::uint16_t>(v.u));
      }
      return;
    case 4:
      if (v.kind == PrimKind::Float) {
        enc.put_f32(static_cast<float>(v.f));
      } else if (prim_class(v.kind) == PrimClass::Signed) {
        enc.put_i32(static_cast<std::int32_t>(v.s));
      } else {
        enc.put_u32(static_cast<std::uint32_t>(v.u));
      }
      return;
    case 8:
      if (v.kind == PrimKind::Double) {
        enc.put_f64(v.f);
      } else if (prim_class(v.kind) == PrimClass::Signed) {
        enc.put_i64(v.s);
      } else {
        enc.put_u64(v.u);
      }
      return;
    default:
      throw hpm::WireError("unencodable primitive kind");
  }
}

PrimValue decode_canonical(Decoder& dec, PrimKind k) {
  switch (canonical_size(k)) {
    case 1:
      if (prim_class(k) == PrimClass::Signed) return PrimValue::of_signed(k, dec.get_i8());
      return PrimValue::of_unsigned(k, dec.get_u8());
    case 2:
      if (prim_class(k) == PrimClass::Signed) return PrimValue::of_signed(k, dec.get_i16());
      return PrimValue::of_unsigned(k, dec.get_u16());
    case 4:
      if (k == PrimKind::Float) return PrimValue::of_float(k, dec.get_f32());
      if (prim_class(k) == PrimClass::Signed) return PrimValue::of_signed(k, dec.get_i32());
      return PrimValue::of_unsigned(k, dec.get_u32());
    case 8:
      if (k == PrimKind::Double) return PrimValue::of_float(k, dec.get_f64());
      if (prim_class(k) == PrimClass::Signed) return PrimValue::of_signed(k, dec.get_i64());
      return PrimValue::of_unsigned(k, dec.get_u64());
    default:
      throw hpm::WireError("undecodable primitive kind");
  }
}

}  // namespace hpm::xdr
