#include "xdr/arch.hpp"

#include <bit>

#include "common/error.hpp"

namespace hpm::xdr {

namespace {

/// Build a PrimKind-indexed layout table from the common knobs that
/// distinguish real data models: long width, pointer width, and the
/// alignment of 8-byte scalars (i386 famously uses 4).
std::array<PrimLayout, kNumPrimKinds> make_layouts(std::uint8_t long_size,
                                                   std::uint8_t wide_align) {
  std::array<PrimLayout, kNumPrimKinds> t{};
  auto set = [&t](PrimKind k, std::uint8_t size, std::uint8_t align) {
    t[prim_index(k)] = PrimLayout{size, align};
  };
  set(PrimKind::Bool, 1, 1);
  set(PrimKind::Char, 1, 1);
  set(PrimKind::SChar, 1, 1);
  set(PrimKind::UChar, 1, 1);
  set(PrimKind::Short, 2, 2);
  set(PrimKind::UShort, 2, 2);
  set(PrimKind::Int, 4, 4);
  set(PrimKind::UInt, 4, 4);
  set(PrimKind::Long, long_size, long_size == 8 ? wide_align : std::uint8_t{4});
  set(PrimKind::ULong, long_size, long_size == 8 ? wide_align : std::uint8_t{4});
  set(PrimKind::LongLong, 8, wide_align);
  set(PrimKind::ULongLong, 8, wide_align);
  set(PrimKind::Float, 4, 4);
  set(PrimKind::Double, 8, wide_align);
  return t;
}

ArchDescriptor make_arch(std::string name, ByteOrder order, std::uint8_t long_size,
                         std::uint8_t ptr_size, std::uint8_t wide_align) {
  ArchDescriptor a;
  a.name = std::move(name);
  a.order = order;
  a.prim = make_layouts(long_size, wide_align);
  a.pointer = PrimLayout{ptr_size, ptr_size};
  return a;
}

}  // namespace

std::string_view prim_name(PrimKind k) noexcept {
  switch (k) {
    case PrimKind::Bool: return "bool";
    case PrimKind::Char: return "char";
    case PrimKind::SChar: return "signed char";
    case PrimKind::UChar: return "unsigned char";
    case PrimKind::Short: return "short";
    case PrimKind::UShort: return "unsigned short";
    case PrimKind::Int: return "int";
    case PrimKind::UInt: return "unsigned int";
    case PrimKind::Long: return "long";
    case PrimKind::ULong: return "unsigned long";
    case PrimKind::LongLong: return "long long";
    case PrimKind::ULongLong: return "unsigned long long";
    case PrimKind::Float: return "float";
    case PrimKind::Double: return "double";
  }
  return "?";
}

PrimClass prim_class(PrimKind k) noexcept {
  switch (k) {
    case PrimKind::Float:
    case PrimKind::Double:
      return PrimClass::Floating;
    case PrimKind::Bool:
    case PrimKind::UChar:
    case PrimKind::UShort:
    case PrimKind::UInt:
    case PrimKind::ULong:
    case PrimKind::ULongLong:
      return PrimClass::Unsigned;
    case PrimKind::Char:
      // Plain char signedness is itself platform-dependent; the canonical
      // stream treats it as signed so that all platforms agree.
      return PrimClass::Signed;
    default:
      return PrimClass::Signed;
  }
}

std::size_t canonical_size(PrimKind k) noexcept {
  switch (k) {
    case PrimKind::Bool:
    case PrimKind::Char:
    case PrimKind::SChar:
    case PrimKind::UChar:
      return 1;
    case PrimKind::Short:
    case PrimKind::UShort:
      return 2;
    case PrimKind::Int:
    case PrimKind::UInt:
    case PrimKind::Float:
      return 4;
    case PrimKind::Long:
    case PrimKind::ULong:
    case PrimKind::LongLong:
    case PrimKind::ULongLong:
    case PrimKind::Double:
      return 8;
  }
  return 0;
}

bool ArchDescriptor::same_data_model(const ArchDescriptor& other) const noexcept {
  if (order != other.order) return false;
  if (pointer.size != other.pointer.size || pointer.align != other.pointer.align) return false;
  for (std::size_t i = 0; i < kNumPrimKinds; ++i) {
    if (prim[i].size != other.prim[i].size || prim[i].align != other.prim[i].align) return false;
  }
  return true;
}

const ArchDescriptor& dec5000_ultrix() {
  static const ArchDescriptor a = make_arch("dec5000_ultrix", ByteOrder::Little, 4, 4, 8);
  return a;
}

const ArchDescriptor& sparc20_solaris() {
  static const ArchDescriptor a = make_arch("sparc20_solaris", ByteOrder::Big, 4, 4, 8);
  return a;
}

const ArchDescriptor& ultra5_solaris() {
  static const ArchDescriptor a = make_arch("ultra5_solaris", ByteOrder::Big, 4, 4, 8);
  return a;
}

const ArchDescriptor& x86_64_linux() {
  static const ArchDescriptor a = make_arch("x86_64_linux", ByteOrder::Little, 8, 8, 8);
  return a;
}

const ArchDescriptor& generic_be64() {
  static const ArchDescriptor a = make_arch("generic_be64", ByteOrder::Big, 8, 8, 8);
  return a;
}

const ArchDescriptor& arm32_linux() {
  static const ArchDescriptor a = make_arch("arm32_linux", ByteOrder::Little, 4, 4, 8);
  return a;
}

const ArchDescriptor& i386_linux() {
  static const ArchDescriptor a = make_arch("i386_linux", ByteOrder::Little, 4, 4, 4);
  return a;
}

const ArchDescriptor& native_arch() {
  static const ArchDescriptor a = [] {
    ArchDescriptor n = make_arch(
        "native",
        std::endian::native == std::endian::big ? ByteOrder::Big : ByteOrder::Little,
        static_cast<std::uint8_t>(sizeof(long)), static_cast<std::uint8_t>(sizeof(void*)),
        static_cast<std::uint8_t>(alignof(double)));
    // Trust the compiler over the heuristic for every kind.
    auto fix = [&n](PrimKind k, std::size_t size, std::size_t align) {
      n.prim[prim_index(k)] =
          PrimLayout{static_cast<std::uint8_t>(size), static_cast<std::uint8_t>(align)};
    };
    fix(PrimKind::Bool, sizeof(bool), alignof(bool));
    fix(PrimKind::Char, sizeof(char), alignof(char));
    fix(PrimKind::SChar, sizeof(signed char), alignof(signed char));
    fix(PrimKind::UChar, sizeof(unsigned char), alignof(unsigned char));
    fix(PrimKind::Short, sizeof(short), alignof(short));
    fix(PrimKind::UShort, sizeof(unsigned short), alignof(unsigned short));
    fix(PrimKind::Int, sizeof(int), alignof(int));
    fix(PrimKind::UInt, sizeof(unsigned int), alignof(unsigned int));
    fix(PrimKind::Long, sizeof(long), alignof(long));
    fix(PrimKind::ULong, sizeof(unsigned long), alignof(unsigned long));
    fix(PrimKind::LongLong, sizeof(long long), alignof(long long));
    fix(PrimKind::ULongLong, sizeof(unsigned long long), alignof(unsigned long long));
    fix(PrimKind::Float, sizeof(float), alignof(float));
    fix(PrimKind::Double, sizeof(double), alignof(double));
    n.pointer = PrimLayout{static_cast<std::uint8_t>(sizeof(void*)),
                           static_cast<std::uint8_t>(alignof(void*))};
    return n;
  }();
  return a;
}

const std::array<std::string_view, 7>& arch_names() {
  static const std::array<std::string_view, 7> names = {
      "dec5000_ultrix", "sparc20_solaris", "ultra5_solaris", "x86_64_linux",
      "generic_be64",   "arm32_linux",     "i386_linux"};
  return names;
}

const ArchDescriptor& arch_by_name(std::string_view name) {
  if (name == "dec5000_ultrix") return dec5000_ultrix();
  if (name == "sparc20_solaris") return sparc20_solaris();
  if (name == "ultra5_solaris") return ultra5_solaris();
  if (name == "x86_64_linux") return x86_64_linux();
  if (name == "generic_be64") return generic_be64();
  if (name == "arm32_linux") return arm32_linux();
  if (name == "i386_linux") return i386_linux();
  if (name == "native") return native_arch();
  throw TypeError("unknown architecture descriptor: " + std::string(name));
}

}  // namespace hpm::xdr
