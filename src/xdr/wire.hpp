// Canonical (machine-independent) stream encoding — the paper's layer 2.
//
// The external data representation is XDR-like: big-endian, fixed-width
// fields, IEEE-754 bit images for floats. Unlike ONC XDR we do not pad
// every field to 4 bytes; widths follow canonical_size() so large numeric
// workloads (linpack matrices) stream densely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/hexdump.hpp"

namespace hpm::xdr {

/// Append-only canonical encoder. All multi-byte integers are written
/// big-endian regardless of the host.
///
/// An optional *sink* turns the encoder into a chunked producer: once
/// `set_sink(chunk_bytes, fn)` is armed, every time `chunk_bytes` of new
/// output accumulate past the flush watermark the sink is handed one
/// fixed-size chunk. Flushed bytes stay in the buffer (the watermark just
/// advances), so `bytes()`/`take()` still see the complete stream — the
/// pipelined coordinator relies on that to retry serially from the
/// retained copy.
class Encoder {
 public:
  using SinkFn = std::function<void(std::span<const std::uint8_t>)>;

  Encoder() = default;
  explicit Encoder(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void put_u8(std::uint8_t v) {
    buf_.push_back(v);
    if (sink_) maybe_flush();
  }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i8(std::int8_t v) { put_u8(static_cast<std::uint8_t>(v)); }
  void put_i16(std::int16_t v) { put_u16(static_cast<std::uint16_t>(v)); }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f32(float v);
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// Raw bytes, verbatim.
  void put_bytes(const void* data, std::size_t len);

  /// Length-prefixed (u32) string.
  void put_string(std::string_view s);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  /// Hand the finished stream to the caller. Records the stream size
  /// under `xdr.encode.bytes` / `xdr.encode.streams` so encode throughput
  /// is derivable from the registry without touching the per-put path.
  Bytes take() noexcept;

  /// Patch a previously written u32 at `offset` (used for counts known
  /// only after the payload is emitted). With a sink armed, patching
  /// below the flush watermark throws — those bytes are already on the
  /// wire.
  void patch_u32(std::size_t offset, std::uint32_t v);

  /// Arm chunked production: every `chunk_bytes` of new output past the
  /// watermark are handed to `fn` as one chunk. Bytes already in the
  /// buffer are below the watermark and are NOT replayed — arm the sink
  /// before the bytes you want chunked.
  void set_sink(std::size_t chunk_bytes, SinkFn fn);

  /// Hand any sub-chunk remainder above the watermark to the sink and
  /// disarm it. No-op when no sink is armed.
  void flush_sink();

  /// Bytes already handed to the sink (the flush watermark).
  [[nodiscard]] std::size_t flushed() const noexcept { return flushed_; }

 private:
  void maybe_flush();

  Bytes buf_;
  SinkFn sink_;
  std::size_t sink_chunk_ = 0;
  std::size_t flushed_ = 0;
};

/// Bounds-checked canonical decoder over a borrowed byte span.
/// Every read past the end throws hpm::WireError.
///
/// An optional *refill* callback turns the decoder into an incremental
/// consumer: when a read would run past the end, the callback is asked
/// to extend the underlying buffer (blocking until more bytes arrive)
/// and `rebase()` the span; only if it returns false does the decoder
/// throw. The streaming restore path uses this to decode chunks as they
/// land.
class Decoder {
 public:
  /// Called with the minimum total span size required to satisfy the
  /// pending read. Must grow the underlying storage, call rebase(), and
  /// return true — or return false to signal the stream truly ended.
  using RefillFn = std::function<bool(std::size_t min_total)>;

  explicit Decoder(std::span<const std::uint8_t> data) noexcept : data_(data) {}
  Decoder(const void* data, std::size_t len) noexcept
      : data_(static_cast<const std::uint8_t*>(data), len) {}
  /// Records the bytes consumed under `xdr.decode.bytes` /
  /// `xdr.decode.streams` (untouched decoders record nothing).
  ~Decoder();

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int8_t get_i8() { return static_cast<std::int8_t>(get_u8()); }
  std::int16_t get_i16() { return static_cast<std::int16_t>(get_u16()); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  float get_f32();
  double get_f64();
  bool get_bool() { return get_u8() != 0; }

  void get_bytes(void* out, std::size_t len);
  std::string get_string();

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  /// Peek at the next byte without consuming it.
  std::uint8_t peek_u8();

  /// Arm incremental refill (see RefillFn). Pass an empty function to
  /// disarm.
  void set_refill(RefillFn fn) { refill_ = std::move(fn); }

  /// Swap in a new (typically longer) view of the same logical stream.
  /// The consumed prefix must be unchanged; the read position is kept.
  void rebase(std::span<const std::uint8_t> data) noexcept { data_ = data; }

 private:
  void need(std::size_t n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  RefillFn refill_;
};

}  // namespace hpm::xdr
