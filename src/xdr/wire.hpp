// Canonical (machine-independent) stream encoding — the paper's layer 2.
//
// The external data representation is XDR-like: big-endian, fixed-width
// fields, IEEE-754 bit images for floats. Unlike ONC XDR we do not pad
// every field to 4 bytes; widths follow canonical_size() so large numeric
// workloads (linpack matrices) stream densely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/hexdump.hpp"

namespace hpm::xdr {

/// Append-only canonical encoder. All multi-byte integers are written
/// big-endian regardless of the host.
class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i8(std::int8_t v) { put_u8(static_cast<std::uint8_t>(v)); }
  void put_i16(std::int16_t v) { put_u16(static_cast<std::uint16_t>(v)); }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f32(float v);
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// Raw bytes, verbatim.
  void put_bytes(const void* data, std::size_t len);

  /// Length-prefixed (u32) string.
  void put_string(std::string_view s);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  /// Hand the finished stream to the caller. Records the stream size
  /// under `xdr.encode.bytes` / `xdr.encode.streams` so encode throughput
  /// is derivable from the registry without touching the per-put path.
  Bytes take() noexcept;

  /// Patch a previously written u32 at `offset` (used for counts known
  /// only after the payload is emitted).
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  Bytes buf_;
};

/// Bounds-checked canonical decoder over a borrowed byte span.
/// Every read past the end throws hpm::WireError.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) noexcept : data_(data) {}
  Decoder(const void* data, std::size_t len) noexcept
      : data_(static_cast<const std::uint8_t*>(data), len) {}
  /// Records the bytes consumed under `xdr.decode.bytes` /
  /// `xdr.decode.streams` (untouched decoders record nothing).
  ~Decoder();

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int8_t get_i8() { return static_cast<std::int8_t>(get_u8()); }
  std::int16_t get_i16() { return static_cast<std::int16_t>(get_u16()); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  float get_f32();
  double get_f64();
  bool get_bool() { return get_u8() != 0; }

  void get_bytes(void* out, std::size_t len);
  std::string get_string();

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  /// Peek at the next byte without consuming it.
  std::uint8_t peek_u8() const;

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace hpm::xdr
