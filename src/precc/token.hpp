// Token model for the precc declaration front-end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hpm::precc {

enum class Tok : std::uint8_t {
  End,
  Ident,
  Integer,
  KwStruct,
  KwUnion,
  KwEnum,
  KwTypedef,
  KwVoid,
  KwConst,     // accepted and ignored (does not affect layout)
  KwTypeWord,  // char/short/int/long/float/double/signed/unsigned/bool
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LParen,
  RParen,
  Star,
  Comma,
  Semi,
  Eq,
  Minus,
  Ellipsis,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  std::uint64_t value = 0;  ///< Integer tokens
  int line = 0;
};

}  // namespace hpm::precc
