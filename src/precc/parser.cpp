#include "precc/parser.hpp"

#include "common/error.hpp"
#include "precc/lexer.hpp"

namespace hpm::precc {

ParseResult Parser::parse(std::string_view source) {
  tokens_ = tokenize(source);
  pos_ = 0;
  result_ = ParseResult{};
  while (peek().kind != Tok::End) parse_top_level();
  return std::move(result_);
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(Tok kind) {
  if (peek().kind != kind) return false;
  advance();
  return true;
}

const Token& Parser::expect(Tok kind, const char* what) {
  if (peek().kind != kind) {
    fail(std::string("expected ") + what + ", found '" + peek().text + "'");
  }
  return advance();
}

void Parser::fail(const std::string& message) const {
  throw ParseError("line " + std::to_string(peek().line) + ": " + message);
}

void Parser::unsafe(const std::string& feature, const std::string& detail) {
  if (strict_) {
    throw UnsafeFeatureError("line " + std::to_string(peek().line) +
                             ": migration-unsafe feature: " + feature +
                             (detail.empty() ? "" : " (" + detail + ")"));
  }
  result_.findings.push_back(UnsafeFinding{peek().line, feature, detail});
}

void Parser::skip_declaration() {
  int depth = 0;
  while (peek().kind != Tok::End) {
    const Tok k = advance().kind;
    if (k == Tok::LBrace) ++depth;
    if (k == Tok::RBrace) --depth;
    if (k == Tok::Semi && depth <= 0) return;
  }
}

void Parser::parse_top_level() {
  if (accept(Tok::KwTypedef)) {
    parse_typedef();
    return;
  }
  if (peek().kind == Tok::KwStruct && peek(1).kind == Tok::Ident &&
      peek(2).kind == Tok::LBrace) {
    parse_struct_definition();
    return;
  }
  if (peek().kind == Tok::KwUnion) {
    unsafe("union", "overlapping members cannot be converted between formats");
    skip_declaration();
    return;
  }
  if (peek().kind == Tok::KwEnum &&
      (peek(1).kind == Tok::LBrace ||
       (peek(1).kind == Tok::Ident && peek(2).kind == Tok::LBrace))) {
    parse_enum_definition();
    return;
  }
  const BaseType base = parse_base_type();
  if (base.type == ti::kInvalidType && !base.is_void) {
    skip_declaration();  // base itself was unsafe; finding already recorded
    return;
  }
  parse_variable_declaration(base);
}

void Parser::parse_struct_definition() {
  expect(Tok::KwStruct, "'struct'");
  const std::string name = expect(Tok::Ident, "struct tag").text;
  const ti::TypeId id = table_->declare_struct(name);
  expect(Tok::LBrace, "'{'");
  std::vector<ti::Field> fields = parse_field_list(name);
  expect(Tok::RBrace, "'}'");
  expect(Tok::Semi, "';' after struct definition");
  table_->define_struct(id, std::move(fields));
  result_.struct_names.push_back(name);
}

std::vector<ti::Field> Parser::parse_field_list(const std::string& struct_name) {
  std::vector<ti::Field> fields;
  while (peek().kind != Tok::RBrace && peek().kind != Tok::End) {
    if (peek().kind == Tok::KwUnion) {
      unsafe("union", "anonymous/member union in struct " + struct_name);
      skip_declaration();
      continue;
    }
    const BaseType base = parse_base_type();
    if (base.type == ti::kInvalidType && !base.is_void) {
      skip_declaration();
      continue;
    }
    bool keep_going = true;
    while (keep_going) {
      std::string name;
      ti::TypeId type = ti::kInvalidType;
      if (!parse_declarator(base, name, type)) {
        skip_declaration();
        keep_going = false;
        break;
      }
      fields.push_back(ti::Field{name, type});
      if (accept(Tok::Comma)) continue;
      expect(Tok::Semi, "';' after field");
      keep_going = false;
    }
  }
  return fields;
}

void Parser::parse_enumerators() {
  expect(Tok::LBrace, "'{'");
  long next_value = 0;
  while (peek().kind != Tok::RBrace && peek().kind != Tok::End) {
    EnumConstant constant;
    constant.name = expect(Tok::Ident, "enumerator name").text;
    if (accept(Tok::Eq)) {
      const bool negative = accept(Tok::Minus);
      const Token& v = expect(Tok::Integer, "enumerator value");
      constant.value = negative ? -static_cast<long>(v.value) : static_cast<long>(v.value);
    } else {
      constant.value = next_value;
    }
    next_value = constant.value + 1;
    result_.enum_constants.push_back(std::move(constant));
    if (!accept(Tok::Comma)) break;
  }
  expect(Tok::RBrace, "'}'");
}

void Parser::parse_enum_definition() {
  // Enums are migration-safe: they convert as plain int. We record the
  // tag (so `enum Tag` resolves as a base type) and the constants (for
  // tooling), but the TI representation is simply `int`.
  expect(Tok::KwEnum, "'enum'");
  if (peek().kind == Tok::Ident) {
    const std::string tag = advance().text;
    enums_[tag] = true;
    result_.enum_names.push_back(tag);
  }
  parse_enumerators();
  // `enum Tag { ... } var;` — an optional declarator list may follow.
  if (peek().kind != Tok::Semi) {
    BaseType base;
    base.type = table_->primitive(xdr::PrimKind::Int);
    parse_variable_declaration(base);
    return;
  }
  expect(Tok::Semi, "';' after enum definition");
}

void Parser::parse_typedef() {
  const BaseType base = parse_base_type();
  if (base.type == ti::kInvalidType && !base.is_void) {
    skip_declaration();
    return;
  }
  std::string name;
  ti::TypeId type = ti::kInvalidType;
  if (!parse_declarator(base, name, type)) {
    skip_declaration();
    return;
  }
  expect(Tok::Semi, "';' after typedef");
  typedefs_[name] = type;
}

void Parser::parse_variable_declaration(const BaseType& base) {
  for (;;) {
    std::string name;
    ti::TypeId type = ti::kInvalidType;
    if (!parse_declarator(base, name, type)) {
      skip_declaration();
      return;
    }
    result_.globals.push_back(ParsedVar{name, type, peek().line});
    if (accept(Tok::Comma)) continue;
    expect(Tok::Semi, "';' after declaration");
    return;
  }
}

Parser::BaseType Parser::parse_base_type() {
  while (accept(Tok::KwConst)) {
  }
  BaseType base;
  if (accept(Tok::KwVoid)) {
    base.is_void = true;
    return base;
  }
  if (accept(Tok::KwStruct)) {
    const std::string name = expect(Tok::Ident, "struct tag").text;
    base.type = table_->declare_struct(name);  // forward reference allowed
    return base;
  }
  if (accept(Tok::KwEnum)) {
    if (peek().kind == Tok::LBrace) {
      // Anonymous inline enum (`typedef enum { ... } E;`).
      parse_enumerators();
    } else {
      const std::string tag = expect(Tok::Ident, "enum tag").text;
      if (enums_.find(tag) == enums_.end()) {
        if (peek().kind == Tok::LBrace) {
          enums_[tag] = true;
          result_.enum_names.push_back(tag);
          parse_enumerators();
        } else {
          fail("unknown enum tag '" + tag + "'");
        }
      }
    }
    base.type = table_->primitive(xdr::PrimKind::Int);
    return base;
  }
  if (peek().kind == Tok::KwTypeWord) {
    base.type = parse_primitive_words();
    return base;
  }
  if (peek().kind == Tok::Ident) {
    const auto it = typedefs_.find(peek().text);
    if (it == typedefs_.end()) fail("unknown type name '" + peek().text + "'");
    advance();
    base.type = it->second;
    return base;
  }
  fail("expected a type specifier, found '" + peek().text + "'");
}

ti::TypeId Parser::parse_primitive_words() {
  bool is_unsigned = false;
  bool is_signed = false;
  int longs = 0;
  bool is_short = false;
  std::string core;  // char, int, float, double, bool, or empty
  while (peek().kind == Tok::KwTypeWord || peek().kind == Tok::KwConst) {
    const std::string w = advance().text;
    if (w == "const") continue;
    if (w == "unsigned") {
      is_unsigned = true;
    } else if (w == "signed") {
      is_signed = true;
    } else if (w == "long") {
      ++longs;
    } else if (w == "short") {
      is_short = true;
    } else if (w == "bool" || w == "_Bool") {
      core = "bool";
    } else if (!core.empty()) {
      fail("conflicting type specifiers '" + core + "' and '" + w + "'");
    } else {
      core = w;
    }
  }
  using xdr::PrimKind;
  auto prim = [this](PrimKind k) { return table_->primitive(k); };
  if (core == "double" && longs > 0) {
    unsafe("long double", "no portable external representation");
    return ti::kInvalidType;
  }
  if (core == "float" || core == "double") {
    if (is_unsigned || is_signed || is_short || longs > 0) fail("invalid floating type");
    return prim(core == "float" ? PrimKind::Float : PrimKind::Double);
  }
  if (core == "bool") return prim(PrimKind::Bool);
  if (core == "char") {
    if (longs > 0 || is_short) fail("invalid char type");
    if (is_unsigned) return prim(PrimKind::UChar);
    if (is_signed) return prim(PrimKind::SChar);
    return prim(PrimKind::Char);
  }
  // core is "int" or empty (e.g. "unsigned", "long long").
  if (is_short) return prim(is_unsigned ? PrimKind::UShort : PrimKind::Short);
  if (longs >= 2) return prim(is_unsigned ? PrimKind::ULongLong : PrimKind::LongLong);
  if (longs == 1) return prim(is_unsigned ? PrimKind::ULong : PrimKind::Long);
  return prim(is_unsigned ? PrimKind::UInt : PrimKind::Int);
}

bool Parser::parse_declarator(const BaseType& base, std::string& name, ti::TypeId& out) {
  return parse_declarator_rec(base.type, base.is_void, name, out);
}

bool Parser::parse_declarator_rec(ti::TypeId type, bool base_is_void, std::string& name,
                                  ti::TypeId& out) {
  if (accept(Tok::Star)) {
    while (accept(Tok::KwConst)) {
    }
    if (base_is_void) {
      unsafe("void pointer", "the MSR model cannot type the referent");
      return false;
    }
    return parse_declarator_rec(table_->intern_pointer(type), false, name, out);
  }

  // Direct declarator: identifier or parenthesized declarator. A void
  // base is still legal here if the declarator turns out to be a pointer
  // inside parentheses or a function (both reported as unsafe below).
  std::size_t inner_start = 0;
  bool parenthesized = false;
  if (peek().kind == Tok::LParen) {
    parenthesized = true;
    advance();
    inner_start = pos_;
    int depth = 1;
    while (depth > 0) {
      const Tok k = peek().kind;
      if (k == Tok::End) fail("unbalanced '(' in declarator");
      if (k == Tok::LParen) ++depth;
      if (k == Tok::RParen) --depth;
      advance();
    }
  } else {
    name = expect(Tok::Ident, "declarator name").text;
  }

  // Suffixes bind to the direct declarator before any inner pointers.
  if (peek().kind == Tok::LParen) {
    unsafe("function declarator",
           "functions and function pointers cannot be migrated as data");
    return false;
  }
  std::vector<std::uint64_t> dims;
  while (accept(Tok::LBracket)) {
    const Token& n = expect(Tok::Integer, "array bound");
    if (n.value == 0 || n.value > 0xFFFFFFFFull) fail("array bound out of range");
    dims.push_back(n.value);
    expect(Tok::RBracket, "']'");
  }
  if (base_is_void && !dims.empty()) fail("array of void");
  for (std::size_t i = dims.size(); i-- > 0;) {
    type = table_->intern_array(type, static_cast<std::uint32_t>(dims[i]));
  }

  if (parenthesized) {
    const std::size_t after_suffix = pos_;
    pos_ = inner_start;
    ti::TypeId inner_out = ti::kInvalidType;
    if (!parse_declarator_rec(type, base_is_void, name, inner_out)) return false;
    expect(Tok::RParen, "')'");
    pos_ = after_suffix;
    out = inner_out;
    return true;
  }
  if (base_is_void) fail("variable declared with type void");
  out = type;
  return true;
}

}  // namespace hpm::precc
