// precc: the pre-compiler front-end (substitute for the paper's
// source-to-source transformation software).
//
// Parses the migration-safe C *declaration* subset — struct definitions,
// typedefs, and global variable declarations with full C declarator
// syntax (pointers, arrays, pointer-to-array, array-of-pointer) — and
// registers the resulting types directly into a ti::TypeTable, exactly
// what the paper's pre-compiler does when it builds the TI table.
//
// Migration-unsafe features (per Smith & Hutchinson's analysis, cited by
// the paper) are detected and reported: unions, function pointers /
// function declarators, `void *`, varargs, `long double`. In strict mode
// the first finding throws hpm::UnsafeFeatureError; otherwise findings
// accumulate and the offending declaration is skipped.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "precc/token.hpp"
#include "ti/table.hpp"

namespace hpm::precc {

struct UnsafeFinding {
  int line = 0;
  std::string feature;  ///< "union", "function pointer", "void pointer", ...
  std::string detail;
};

struct ParsedVar {
  std::string name;
  ti::TypeId type = ti::kInvalidType;
  int line = 0;
};

struct EnumConstant {
  std::string name;
  long value = 0;
};

struct ParseResult {
  std::vector<std::string> struct_names;  ///< in definition order
  std::vector<std::string> enum_names;    ///< named enums (tagless allowed too)
  std::vector<EnumConstant> enum_constants;
  std::vector<ParsedVar> globals;         ///< top-level variable declarations
  std::vector<UnsafeFinding> findings;
  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

class Parser {
 public:
  /// `strict`: throw hpm::UnsafeFeatureError at the first unsafe feature
  /// instead of recording and skipping.
  Parser(ti::TypeTable& table, bool strict = false) : table_(&table), strict_(strict) {}

  /// Parse a declaration file; registers types into the table as a side
  /// effect. Throws hpm::ParseError on syntax errors.
  ParseResult parse(std::string_view source);

 private:
  struct BaseType {
    ti::TypeId type = ti::kInvalidType;
    bool is_void = false;
  };

  const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  bool accept(Tok kind);
  const Token& expect(Tok kind, const char* what);
  [[noreturn]] void fail(const std::string& message) const;
  void unsafe(const std::string& feature, const std::string& detail);
  void skip_declaration();

  void parse_top_level();
  void parse_struct_definition();
  void parse_enum_definition();
  void parse_enumerators();
  void parse_typedef();
  void parse_variable_declaration(const BaseType& base);
  BaseType parse_base_type();
  ti::TypeId parse_primitive_words();

  /// Full C declarator: returns the declared name and final type.
  /// Returns false (after recording a finding) on unsafe declarators.
  bool parse_declarator(const BaseType& base, std::string& name, ti::TypeId& out);
  bool parse_declarator_rec(ti::TypeId type, bool base_is_void, std::string& name,
                            ti::TypeId& out);

  std::vector<ti::Field> parse_field_list(const std::string& struct_name);

  ti::TypeTable* table_;
  bool strict_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, ti::TypeId> typedefs_;
  std::unordered_map<std::string, bool> enums_;  ///< known enum tags
  ParseResult result_;
};

}  // namespace hpm::precc
