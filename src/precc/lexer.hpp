// Lexer for the migration-safe C declaration subset.
//
// Handles identifiers, decimal/hex integers, punctuation, `//` and
// `/* */` comments, and classifies the keywords precc cares about. Any
// other character is a hpm::ParseError with a line number.
#pragma once

#include <string_view>

#include "precc/token.hpp"

namespace hpm::precc {

/// Tokenize the whole input eagerly (declaration files are small; an
/// indexable token vector makes the two-pass declarator parse trivial).
std::vector<Token> tokenize(std::string_view source);

}  // namespace hpm::precc
