// precc back-end: emit the C++ registration code the paper's pre-compiler
// would attach to the transformed program.
//
// Given a TypeTable populated by the Parser, generates a self-contained
// `register_types(hpm::ti::TypeTable&)` translation unit using the
// StructBuilder/HPM_TI_FIELD idiom, plus a human-readable report of the
// parsed declarations and any migration-unsafe findings.
#pragma once

#include <string>

#include "precc/parser.hpp"

namespace hpm::precc {

/// C++ source for registering every parsed struct (assumes the
/// corresponding C++ struct definitions are in scope).
std::string generate_registration(const ti::TypeTable& table, const ParseResult& result);

/// Human-readable summary: structs, globals with spelled types, findings.
std::string report(const ti::TypeTable& table, const ParseResult& result);

}  // namespace hpm::precc
