#include "precc/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "common/error.hpp"

namespace hpm::precc {

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> map = {
      {"struct", Tok::KwStruct},   {"union", Tok::KwUnion},
      {"enum", Tok::KwEnum},
      {"typedef", Tok::KwTypedef}, {"void", Tok::KwVoid},
      {"const", Tok::KwConst},     {"char", Tok::KwTypeWord},
      {"short", Tok::KwTypeWord},  {"int", Tok::KwTypeWord},
      {"long", Tok::KwTypeWord},   {"float", Tok::KwTypeWord},
      {"double", Tok::KwTypeWord}, {"signed", Tok::KwTypeWord},
      {"unsigned", Tok::KwTypeWord}, {"bool", Tok::KwTypeWord},
      {"_Bool", Tok::KwTypeWord},
  };
  return map;
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();
  auto push = [&out, &line](Tok kind, std::string text = {}, std::uint64_t value = 0) {
    out.push_back(Token{kind, std::move(text), value, line});
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) throw ParseError("line " + std::to_string(line) + ": unterminated comment");
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '_')) ++i;
      const std::string_view word = src.substr(start, i - start);
      const auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second, std::string(word));
      } else {
        push(Tok::Ident, std::string(word));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      int base = 10;
      if (c == '0' && i + 1 < n && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        base = 16;
        i += 2;
      }
      std::uint64_t value = 0;
      while (i < n && std::isxdigit(static_cast<unsigned char>(src[i]))) {
        const char d = src[i];
        const int digit = std::isdigit(static_cast<unsigned char>(d))
                              ? d - '0'
                              : 10 + (std::tolower(d) - 'a');
        if (base == 10 && digit >= 10) break;
        value = value * base + static_cast<std::uint64_t>(digit);
        ++i;
      }
      push(Tok::Integer, std::string(src.substr(start, i - start)), value);
      continue;
    }
    if (c == '.' && i + 2 < n && src[i + 1] == '.' && src[i + 2] == '.') {
      push(Tok::Ellipsis, "...");
      i += 3;
      continue;
    }
    switch (c) {
      case '{': push(Tok::LBrace, "{"); break;
      case '}': push(Tok::RBrace, "}"); break;
      case '[': push(Tok::LBracket, "["); break;
      case ']': push(Tok::RBracket, "]"); break;
      case '(': push(Tok::LParen, "("); break;
      case ')': push(Tok::RParen, ")"); break;
      case '*': push(Tok::Star, "*"); break;
      case ',': push(Tok::Comma, ","); break;
      case ';': push(Tok::Semi, ";"); break;
      case '=': push(Tok::Eq, "="); break;
      case '-': push(Tok::Minus, "-"); break;
      default:
        throw ParseError("line " + std::to_string(line) + ": unexpected character '" +
                         std::string(1, c) + "'");
    }
    ++i;
  }
  out.push_back(Token{Tok::End, "", 0, line});
  return out;
}

}  // namespace hpm::precc
