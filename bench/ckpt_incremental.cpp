// Incremental-checkpoint experiment (extension of §4.3's cost analysis):
// how does the delta size scale with the fraction of state that actually
// changed between checkpoints?
//
// Workload: 64 heap arrays of 32 KB; between captures, a chosen fraction
// of them is mutated. Expected shape: delta bytes ~ linear in the hot
// fraction, with a small constant floor (execution state + digest
// metadata), versus the flat full-capture line.
#include <cstdio>
#include <vector>

#include "ckpt/incremental.hpp"
#include "emit.hpp"
#include "mig/annotate.hpp"

using namespace hpm;

namespace {

constexpr int kArrays = 64;
constexpr std::uint32_t kElems = 4096;  // 32 KB per array

void program(mig::MigContext& ctx, ckpt::IncrementalCheckpointer* checkpointer, int hot,
             std::vector<ckpt::IncrementalStats>* stats) {
  HPM_FUNCTION(ctx);
  double* arrays[kArrays];
  int round, a;
  HPM_LOCAL(ctx, arrays);
  HPM_LOCAL(ctx, round);
  HPM_LOCAL(ctx, a);
  HPM_LOCAL(ctx, hot);
  HPM_BODY(ctx);
  for (a = 0; a < kArrays; ++a) {
    arrays[a] = ctx.heap_alloc<double>(kElems, "arr");
    for (std::uint32_t i = 0; i < kElems; ++i) arrays[a][i] = i;
  }
  for (round = 0; round < 4; ++round) {
    HPM_POLL(ctx, 1);
    stats->push_back(checkpointer->capture(ctx));
    for (a = 0; a < hot; ++a) arrays[a][0] += 1.0;  // touch `hot` arrays
  }
  for (a = 0; a < kArrays; ++a) ctx.heap_free(arrays[a]);
  HPM_BODY_END(ctx);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchReport report("ckpt_incremental", args.smoke);
  std::printf("Incremental checkpoint deltas vs mutated fraction (64 x 32 KB arrays)\n\n");
  std::printf("%10s %14s %14s %14s %12s\n", "hot/64", "base_bytes", "delta_bytes",
              "delta_blocks", "reduction");
  const std::vector<int> hots =
      args.smoke ? std::vector<int>{4} : std::vector<int>{0, 4, 16, 32, 64};
  for (int hot : hots) {
    const std::string prefix = "/tmp/hpm_bench_inc_" + std::to_string(hot);
    for (int i = 0; i < 8; ++i) {
      std::remove((prefix + "." + std::to_string(i)).c_str());
    }
    ti::TypeTable types;
    mig::MigContext ctx(types);
    ckpt::IncrementalCheckpointer checkpointer(prefix);
    std::vector<ckpt::IncrementalStats> stats;
    program(ctx, &checkpointer, hot, &stats);
    // stats[0] is the full base; stats[2] a steady-state delta.
    const double reduction =
        static_cast<double>(stats[0].file_bytes) / static_cast<double>(stats[2].file_bytes);
    std::printf("%10d %14llu %14llu %14llu %11.1fx\n", hot,
                static_cast<unsigned long long>(stats[0].file_bytes),
                static_cast<unsigned long long>(stats[2].file_bytes),
                static_cast<unsigned long long>(stats[2].written_blocks), reduction);
    const std::string row = "hot" + std::to_string(hot) + ".";
    report.add(row + "base_bytes", static_cast<double>(stats[0].file_bytes), "bytes");
    report.add(row + "delta_bytes", static_cast<double>(stats[2].file_bytes), "bytes");
    report.add(row + "reduction", reduction, "ratio");
  }
  std::printf("\nexpected shape: delta bytes grow linearly with the hot fraction; the\n"
              "0-hot floor is the execution state plus the mutating loop locals.\n");
  return report.write_if_requested(args) ? 0 : 1;
}
