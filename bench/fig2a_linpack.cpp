// Regenerates Figure 2(a): data collection and restoration time of the
// linpack program as a function of migration data size (matrices
// 500x500 ... 1000x1000, ~2 MB to ~8 MB of live data).
//
// Paper shape: both curves are LINEAR in the live-data bytes (the number
// of MSR nodes stays constant, so the MSRLT search/update terms are
// constant and only the encode/decode term scales), and the gap between
// collection and restoration is roughly constant across sizes.
//
// --smoke runs one small matrix; --json PATH writes hpm-bench-v1.
#include <cstdio>
#include <vector>

#include "apps/linpack.hpp"
#include "emit.hpp"
#include "support.hpp"

using namespace hpm;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchReport report("fig2a_linpack", args.smoke);
  const std::vector<int> sizes =
      args.smoke ? std::vector<int>{200} : std::vector<int>{500, 600, 700, 800, 900, 1000};

  std::printf("Figure 2(a): linpack collect/restore time vs data size\n");
  std::printf("%6s %12s %12s %12s %10s %14s\n", "n", "bytes", "collect_s", "restore_s",
              "blocks", "msrlt_searches");
  double first_ratio = 0;
  double last_ratio = 0;
  for (int n : sizes) {
    apps::LinpackResult result;
    const bench::Measurement m = bench::measure_migration(
        apps::linpack_register_types,
        [&result, n](mig::MigContext& ctx) { apps::linpack_program(ctx, n, 1, &result); },
        /*at_poll=*/1);
    std::printf("%6d %12llu %12.5f %12.5f %10llu %14llu\n", n,
                static_cast<unsigned long long>(m.bytes), m.collect_s, m.restore_s,
                static_cast<unsigned long long>(
                    m.collect.counter("msrm.collect.blocks_saved")),
                static_cast<unsigned long long>(m.collect.counter("msr.msrlt.searches")));
    const double ratio = m.collect_s / static_cast<double>(m.bytes);
    if (first_ratio == 0) first_ratio = ratio;
    last_ratio = ratio;
    const std::string prefix = "n" + std::to_string(n) + ".";
    report.add(prefix + "collect_seconds", m.collect_s, "seconds");
    report.add(prefix + "restore_seconds", m.restore_s, "seconds");
    report.add(prefix + "stream_bytes", static_cast<double>(m.bytes), "bytes");
  }
  std::printf("\nshape check: collect seconds-per-byte at n=1000 vs n=500: %.2fx "
              "(1.0 = perfectly linear in sum(Di))\n",
              last_ratio / first_ratio);
  report.add("linearity_ratio", last_ratio / first_ratio, "ratio");
  report.add_percentiles("trace.mig.collect");
  report.add_percentiles("trace.mig.restore");
  return report.write_if_requested(args) ? 0 : 1;
}
