// Scheduler-policy experiment (paper intro + §5): does process migration
// improve application performance and environment-wide efficiency, and
// when does the cost model say it stops paying off?
//
// Scenario: a 4-host cluster; all jobs are submitted to host 0 (the
// classic hotspot). We sweep the jobs' live-state size: small states
// migrate almost for free, huge states make migration a bad deal — the
// load-balancing policy must converge to never-migrate behavior as the
// freeze cost grows.
#include <cstdio>
#include <vector>

#include "emit.hpp"
#include "sched/cluster.hpp"

using namespace hpm::sched;

int main(int argc, char** argv) {
  const hpm::bench::BenchArgs args = hpm::bench::parse_bench_args(argc, argv);
  hpm::bench::BenchReport report("sched_policies", args.smoke);
  std::printf("Scheduler policies on a hotspot workload (4 hosts, 12 jobs on host 0, "
              "100 Mb/s)\n\n");
  std::printf("%12s %14s %14s %12s %12s %12s\n", "state", "never_makespan",
              "lb_makespan", "speedup", "migrations", "frozen_s");

  const CostModel model = CostModel::calibrated();
  ClusterSim sim({{"h0"}, {"h1"}, {"h2"}, {"h3"}}, model);
  NeverMigrate never;
  LoadBalance balance;

  struct Case {
    const char* label;
    std::uint64_t bytes;
    std::uint64_t blocks;
  };
  const std::vector<Case> cases =
      args.smoke ? std::vector<Case>{Case{"64 KB", 64ull << 10, 100}}
                 : std::vector<Case>{Case{"64 KB", 64ull << 10, 100},
                                     Case{"1 MB", 1ull << 20, 2000},
                                     Case{"8 MB", 8ull << 20, 20000},
                                     Case{"64 MB", 64ull << 20, 200000},
                                     Case{"512 MB", 512ull << 20, 1000000}};
  for (const Case c : cases) {
    std::vector<JobSpec> jobs;
    for (int i = 0; i < 12; ++i) {
      jobs.push_back(JobSpec{"j" + std::to_string(i), 2.0, i * 0.05, 0, c.bytes, c.blocks});
    }
    const SimResult r_never = sim.run(jobs, never);
    const SimResult r_bal = sim.run(jobs, balance);
    std::printf("%12s %14.2f %14.2f %11.2fx %12u %12.3f\n", c.label, r_never.makespan,
                r_bal.makespan, r_never.makespan / r_bal.makespan, r_bal.migrations,
                r_bal.total_frozen_seconds);
    const std::string prefix = std::string("state_") + c.label + ".";
    report.add(prefix + "speedup", r_never.makespan / r_bal.makespan, "ratio");
    report.add(prefix + "migrations", r_bal.migrations, "count");
  }
  std::printf("\nexpected shape: speedup near the host ratio (~4x) for small state,\n"
              "decaying toward 1.0x (and migrations toward 0) as freeze cost grows.\n");
  return report.write_if_requested(args) ? 0 : 1;
}
