// Regenerates Figure 2(b): data collection and restoration time of the
// bitonic sort program as a function of the number of values sorted.
//
// Paper shape: unlike linpack, BOTH the node count n and the data volume
// grow with the input, so collection (whose MSRLT search term is
// O(n log n)) pulls away from restoration (whose MSRLT update term is
// O(n)) as the input scales — the curves diverge.
//
// --smoke runs one small input; --json PATH writes hpm-bench-v1.
#include <cstdio>
#include <vector>

#include "apps/bitonic.hpp"
#include "emit.hpp"
#include "support.hpp"

using namespace hpm;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchReport report("fig2b_bitonic", args.smoke);
  const std::vector<int> sizes = args.smoke ? std::vector<int>{10}
                                            : std::vector<int>{12, 13, 14, 15, 16, 17};

  std::printf("Figure 2(b): bitonic collect/restore time vs number sorted\n");
  std::printf("%8s %10s %12s %12s %12s %14s %14s\n", "sorted", "blocks", "bytes",
              "collect_s", "restore_s", "search_steps", "registrations");
  double first_steps_per_block = 0;
  double last_steps_per_block = 0;
  double first_reg_per_block = 0;
  double last_reg_per_block = 0;
  for (int log2_leaves : sizes) {
    apps::BitonicResult result;
    const bench::Measurement m = bench::measure_migration(
        apps::bitonic_register_types,
        [&result, log2_leaves](mig::MigContext& ctx) {
          apps::bitonic_program(ctx, log2_leaves, 9, &result);
        },
        /*at_poll=*/1);
    const std::uint64_t saved = m.collect.counter("msrm.collect.blocks_saved");
    const std::uint64_t steps = m.collect.counter("msr.msrlt.search_steps");
    const std::uint64_t materialized = m.restore.counter("msrm.restore.blocks_created") +
                                       m.restore.counter("msrm.restore.blocks_bound");
    std::printf("%8u %10llu %12llu %12.5f %12.5f %14llu %14llu\n", 1u << log2_leaves,
                static_cast<unsigned long long>(saved),
                static_cast<unsigned long long>(m.bytes), m.collect_s, m.restore_s,
                static_cast<unsigned long long>(steps),
                static_cast<unsigned long long>(materialized));
    const double blocks = static_cast<double>(saved);
    const double steps_per_block = static_cast<double>(steps) / blocks;
    const double reg_per_block = static_cast<double>(materialized) / blocks;
    if (first_steps_per_block == 0) {
      first_steps_per_block = steps_per_block;
      first_reg_per_block = reg_per_block;
    }
    last_steps_per_block = steps_per_block;
    last_reg_per_block = reg_per_block;
    const std::string prefix = "log2n" + std::to_string(log2_leaves) + ".";
    report.add(prefix + "collect_seconds", m.collect_s, "seconds");
    report.add(prefix + "restore_seconds", m.restore_s, "seconds");
    report.add(prefix + "stream_bytes", static_cast<double>(m.bytes), "bytes");
  }
  std::printf("\nshape checks (the paper's O(n log n) vs O(n) model, via op counters):\n");
  std::printf("  collection search steps per block grew %.2f -> %.2f (the log n factor)\n",
              first_steps_per_block, last_steps_per_block);
  std::printf("  restoration MSRLT updates per block stayed %.2f -> %.2f (constant)\n",
              first_reg_per_block, last_reg_per_block);
  std::printf("(wall-clock constants differ from 1998: on a modern allocator, restoration's "
              "per-block\nallocation keeps it above collection — consistent with Table 1's "
              "bitonic row, where the\npaper also measured Restore > Collect.)\n");
  report.add("search_steps_per_block.first", first_steps_per_block, "steps");
  report.add("search_steps_per_block.last", last_steps_per_block, "steps");
  report.add_percentiles("trace.mig.collect");
  report.add_percentiles("trace.mig.restore");
  return report.write_if_requested(args) ? 0 : 1;
}
