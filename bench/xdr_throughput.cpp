// Layer-2 microbenchmarks: canonical encode/decode throughput and
// per-architecture machine-specific conversion — the Encode-and-copy /
// Decode-and-copy term of the §4.2 model in isolation — plus the bulk
// fast path (one put_bytes/get_bytes memcpy of a pointer-free primitive
// array, the same-architecture PNEW body) against the per-element
// canonical loop it replaces.
//
// Writes BENCH_xdr.json (hpm-bench-v1; override with --json PATH). With
// --smoke, skips google-benchmark and times one small encode/decode pass.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "emit.hpp"
#include "xdr/value.hpp"

namespace {

using namespace hpm::xdr;

void BM_encode_doubles_canonical(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = i * 1.5;
  for (auto _ : state) {
    Encoder enc(n * 8);
    for (double d : data) enc.put_f64(d);
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 8);
}
BENCHMARK(BM_encode_doubles_canonical)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_decode_doubles_canonical(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Encoder enc(n * 8);
  for (std::size_t i = 0; i < n; ++i) enc.put_f64(i * 1.5);
  for (auto _ : state) {
    Decoder dec(enc.bytes());
    double sink = 0;
    for (std::size_t i = 0; i < n; ++i) sink += dec.get_f64();
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 8);
}
BENCHMARK(BM_decode_doubles_canonical)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_encode_doubles_bulk(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = i * 1.5;
  for (auto _ : state) {
    Encoder enc(n * 8);
    enc.put_bytes(reinterpret_cast<const std::uint8_t*>(data.data()), n * 8);
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 8);
}
BENCHMARK(BM_encode_doubles_bulk)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_decode_doubles_bulk(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Encoder enc(n * 8);
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = i * 1.5;
  enc.put_bytes(reinterpret_cast<const std::uint8_t*>(data.data()), n * 8);
  std::vector<double> out(n);
  for (auto _ : state) {
    Decoder dec(enc.bytes());
    dec.get_bytes(reinterpret_cast<std::uint8_t*>(out.data()), n * 8);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 8);
}
BENCHMARK(BM_decode_doubles_bulk)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_prim_roundtrip_per_arch(benchmark::State& state) {
  const ArchDescriptor& arch = arch_by_name(arch_names()[state.range(0)]);
  std::uint8_t buf[8] = {};
  const PrimValue v = PrimValue::of_signed(PrimKind::Int, -123456);
  for (auto _ : state) {
    write_raw(buf, arch, PrimKind::Int, v);
    benchmark::DoNotOptimize(read_raw(buf, arch, PrimKind::Int));
  }
  state.SetLabel(std::string(arch.name));
}
BENCHMARK(BM_prim_roundtrip_per_arch)->DenseRange(0, 6);

void BM_pointer_cell_per_arch(benchmark::State& state) {
  const ArchDescriptor& arch = arch_by_name(arch_names()[state.range(0)]);
  std::uint8_t buf[8] = {};
  for (auto _ : state) {
    write_pointer_cell(buf, arch, 0xBEEF);
    benchmark::DoNotOptimize(read_pointer_cell(buf, arch));
  }
  state.SetLabel(std::string(arch.name));
}
BENCHMARK(BM_pointer_cell_per_arch)->DenseRange(0, 6);

/// One measured encode+decode pass of `n` doubles through the canonical
/// wire format; records throughput rows and (via Encoder::take / the
/// Decoder destructor) the xdr.* registry counters.
void measured_pass(hpm::bench::BenchReport& report, std::size_t n) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  Encoder enc(n * 8);
  for (std::size_t i = 0; i < n; ++i) enc.put_f64(static_cast<double>(i) * 1.5);
  const hpm::Bytes wire = enc.take();
  const double encode_s = std::chrono::duration<double>(Clock::now() - t0).count();

  const auto t1 = Clock::now();
  double sink = 0;
  {
    Decoder dec(wire);
    for (std::size_t i = 0; i < n; ++i) sink += dec.get_f64();
  }
  const double decode_s = std::chrono::duration<double>(Clock::now() - t1).count();
  benchmark::DoNotOptimize(sink);

  const double bytes = static_cast<double>(wire.size());
  report.add("encode.doubles.bytes_per_second", bytes / encode_s, "bytes/second");
  report.add("decode.doubles.bytes_per_second", bytes / decode_s, "bytes/second");
  report.add("stream.bytes", bytes, "bytes");
}

/// The bulk fast path against the canonical loop: the same n doubles,
/// best-of-5 each way, and the resulting speedup row the acceptance gate
/// reads. The bulk path is a single put_bytes — the exact body a
/// same-architecture kBodyRaw PNEW carries.
void measured_bulk_pass(hpm::bench::BenchReport& report, std::size_t n) {
  using Clock = std::chrono::steady_clock;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<double>(i) * 1.5;
  double canonical_s = 1e9;
  double bulk_s = 1e9;
  for (int rep = 0; rep < 5; ++rep) {
    {
      const auto t0 = Clock::now();
      Encoder enc(n * 8);
      for (double d : data) enc.put_f64(d);
      benchmark::DoNotOptimize(enc.bytes().data());
      canonical_s = std::min(canonical_s,
                             std::chrono::duration<double>(Clock::now() - t0).count());
    }
    {
      const auto t0 = Clock::now();
      Encoder enc(n * 8);
      enc.put_bytes(reinterpret_cast<const std::uint8_t*>(data.data()), n * 8);
      benchmark::DoNotOptimize(enc.bytes().data());
      bulk_s = std::min(bulk_s, std::chrono::duration<double>(Clock::now() - t0).count());
    }
  }
  const double bytes = static_cast<double>(n) * 8;
  report.add("encode.doubles.bulk_bytes_per_second", bytes / bulk_s, "bytes/second");
  report.add("encode.doubles.bulk_speedup", canonical_s / bulk_s, "ratio");
  std::printf("bulk encode fast path: %.2fx over canonical (%zu doubles)\n",
              canonical_s / bulk_s, n);
}

}  // namespace

int main(int argc, char** argv) {
  const hpm::bench::BenchArgs args =
      hpm::bench::parse_bench_args(argc, argv, "BENCH_xdr.json");
  hpm::bench::BenchReport report("xdr_throughput", args.smoke);
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  // Both modes take the measured pass, so the JSON always carries real
  // throughput rows plus the xdr.encode/decode stream counters.
  measured_pass(report, args.smoke ? (1u << 12) : (1u << 20));
  measured_bulk_pass(report, args.smoke ? (1u << 14) : (1u << 20));
  report.add_percentiles("xdr.encode.stream_bytes");
  return report.write(args.json_path) ? 0 : 1;
}
