// Layer-2 microbenchmarks: canonical encode/decode throughput and
// per-architecture machine-specific conversion — the Encode-and-copy /
// Decode-and-copy term of the §4.2 model in isolation.
#include <benchmark/benchmark.h>

#include "xdr/value.hpp"

namespace {

using namespace hpm::xdr;

void BM_encode_doubles_canonical(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = i * 1.5;
  for (auto _ : state) {
    Encoder enc(n * 8);
    for (double d : data) enc.put_f64(d);
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 8);
}
BENCHMARK(BM_encode_doubles_canonical)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_decode_doubles_canonical(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Encoder enc(n * 8);
  for (std::size_t i = 0; i < n; ++i) enc.put_f64(i * 1.5);
  for (auto _ : state) {
    Decoder dec(enc.bytes());
    double sink = 0;
    for (std::size_t i = 0; i < n; ++i) sink += dec.get_f64();
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 8);
}
BENCHMARK(BM_decode_doubles_canonical)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_prim_roundtrip_per_arch(benchmark::State& state) {
  const ArchDescriptor& arch = arch_by_name(arch_names()[state.range(0)]);
  std::uint8_t buf[8] = {};
  const PrimValue v = PrimValue::of_signed(PrimKind::Int, -123456);
  for (auto _ : state) {
    write_raw(buf, arch, PrimKind::Int, v);
    benchmark::DoNotOptimize(read_raw(buf, arch, PrimKind::Int));
  }
  state.SetLabel(std::string(arch.name));
}
BENCHMARK(BM_prim_roundtrip_per_arch)->DenseRange(0, 6);

void BM_pointer_cell_per_arch(benchmark::State& state) {
  const ArchDescriptor& arch = arch_by_name(arch_names()[state.range(0)]);
  std::uint8_t buf[8] = {};
  for (auto _ : state) {
    write_pointer_cell(buf, arch, 0xBEEF);
    benchmark::DoNotOptimize(read_pointer_cell(buf, arch));
  }
  state.SetLabel(std::string(arch.name));
}
BENCHMARK(BM_pointer_cell_per_arch)->DenseRange(0, 6);

}  // namespace

BENCHMARK_MAIN();
