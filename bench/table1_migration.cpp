// Regenerates Table 1: "Timing results (in seconds)" — process migration
// time split into Collect / Tx / Restore for the linpack 1000x1000
// benchmark and the bitonic sort program, on a 100 Mb/s Ethernet
// (modeled; the paper measured two Ultra 5 workstations).
//
// Paper reference values:
//   Linpack 1000x1000:  Collect .846   Tx .797   Restore .712
//   bitonic (100k):     Collect .446   Tx .269   Restore .501
//
// Absolute numbers differ on modern hardware (the paper's Ultra 5 is a
// ~270 MHz machine); the shape to check is (a) both phases are the same
// order of magnitude as Tx, (b) linpack's time is dominated by data
// volume while bitonic's is dominated by block count, and (c) for
// bitonic, Collect > Restore (the MSRLT search term).
//
// A second section compares the serial and pipelined transfer paths
// end-to-end (run_migration with a throttled 100 Mb/s link) over the
// in-memory and TCP-loopback transports: the pipelined wall time must not
// exceed the serial one, since Collect / Tx / Restore overlap.
//
// A third section pairs serial and parallel collection on a many-rooted
// forest workload: the seed configuration (ordered-map index, one
// thread) against the flat interval index at collect_threads=4. The two
// flat-index streams are asserted bit-identical in-bench, and the
// emitted `msrlt.search_steps_per_search` / `parcollect.*` rows feed the
// perf_guard ctest fixture.
//
// A fourth section runs the content-addressed dedup'd transfer
// (DESIGN.md §15) over the same linpack state: plain baseline, cold-cache
// dedup run, then an identical warm rerun that must move < 5% of the
// stream's bytes. All three digests are asserted equal in-bench, and the
// `dedup.*` rows land both here and in a focused BENCH_dedup.json beside
// the main report for the perf_guard / schema-check fixtures.
//
// Writes BENCH_migration.json (hpm-bench-v1; override with --json PATH).
// --smoke shrinks the problems to one cheap iteration each.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/bitonic.hpp"
#include "apps/linpack.hpp"
#include "apps/workload.hpp"
#include "emit.hpp"
#include "hpm/migrate.hpp"
#include "msrm/par_collect.hpp"
#include "obs/metrics.hpp"
#include "support.hpp"

using namespace hpm;

namespace {

struct TransferRun {
  double wall_seconds = 0;
  double overlap_ratio = 0;
  std::uint64_t bytes = 0;
};

// One end-to-end run_migration over a real channel with the link model
// actually throttling the sends; stop_after_restore keeps the program
// tail out of the measurement.
TransferRun run_transfer(int linpack_n, mig::Transport transport, bool pipeline) {
  apps::LinpackResult result;
  mig::RunOptions options;
  options.register_types = apps::linpack_register_types;
  options.program = [&result, linpack_n](mig::MigContext& ctx) {
    apps::linpack_program(ctx, linpack_n, 1, &result);
  };
  options.migrate_at_poll = 1;
  options.transport = transport;
  options.link = net::SimulatedLink::ethernet_100mbps();
  options.throttle = true;
  options.pipeline = pipeline;
  options.stop_after_restore = true;
  const auto t0 = std::chrono::steady_clock::now();
  const mig::MigrationReport report = mig::run_migration(options);
  const auto t1 = std::chrono::steady_clock::now();
  TransferRun r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.overlap_ratio = report.overlap_ratio;
  r.bytes = report.stream_bytes;
  if (!report.migrated) std::fprintf(stderr, "run_transfer: migration did not happen\n");
  return r;
}

// One end-to-end migration of the same linpack state with the
// content-addressed chunk cache engaged (or plain when `cache_dir` is
// empty). Memory transport, unthrottled: the interesting numbers here are
// bytes moved and the end-to-end stream digest, not seconds.
struct DedupRun {
  std::uint64_t stream_bytes = 0;
  std::uint64_t wire_bytes = 0;  ///< manifest + StateChunk + StateEnd payload bytes sent
  std::uint64_t manifest_chunks = 0;
  std::uint64_t hit_chunks = 0;
  std::uint64_t miss_chunks = 0;
  std::uint64_t digest = 0;
  bool migrated = false;
};

DedupRun run_dedup(int linpack_n, const std::string& cache_dir) {
  apps::LinpackResult result;
  mig::RunOptions options;
  options.register_types = apps::linpack_register_types;
  options.program = [&result, linpack_n](mig::MigContext& ctx) {
    apps::linpack_program(ctx, linpack_n, 1, &result);
  };
  options.migrate_at_poll = 1;
  options.transport = mig::Transport::Memory;
  options.pipeline = true;
  options.stop_after_restore = true;
  if (!cache_dir.empty()) {
    options.chunk_cache_dir = cache_dir;
    options.wire_codec = mig::WireCodec::VarintDelta;
  }
  const mig::MigrationReport report = mig::run_migration(options);
  DedupRun r;
  r.stream_bytes = report.stream_bytes;
  r.wire_bytes = report.dedup_wire_bytes;
  r.manifest_chunks = report.dedup_manifest_chunks;
  r.hit_chunks = report.dedup_hit_chunks;
  r.miss_chunks = report.dedup_miss_chunks;
  r.digest = report.stream_digest;
  r.migrated = report.migrated;
  if (!report.migrated) std::fprintf(stderr, "run_dedup: migration did not happen\n");
  return r;
}

// A forest of disjoint random subgraphs, one root variable per tree, on
// one migratable heap. Disjoint trees make the CAS-min ownership pass
// partition evenly, so the worker threads have real independent work —
// a connected graph would hand every block to rank 0.
struct Forest {
  ti::TypeTable types;
  std::unique_ptr<mig::MigContext> ctx;
  std::vector<msr::Address> roots;
};

std::unique_ptr<Forest> build_forest(msr::SearchStrategy strategy, unsigned trees,
                                     std::uint32_t nodes_per_tree) {
  auto f = std::make_unique<Forest>();
  apps::workload_register_types(f->types);
  f->ctx = std::make_unique<mig::MigContext>(f->types, strategy);
  apps::GraphShape shape;
  shape.nodes = nodes_per_tree;
  shape.edge_density = 0.8;
  shape.share_bias = 0.5;
  for (unsigned t = 0; t < trees; ++t) {
    const std::string name = "tree" + std::to_string(t);
    apps::RandNode*& root = f->ctx->global<apps::RandNode*>(name.c_str());
    root = apps::build_random_graph(*f->ctx, 100 + t, shape)[0];
    f->roots.push_back(reinterpret_cast<msr::Address>(&root));
  }
  return f;
}

/// Best-of-`repeats` wall time for one collection pass; the last pass's
/// stream is returned through `out` when non-null.
double time_collect(Forest& f, unsigned threads, int repeats, Bytes* out = nullptr) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    xdr::Encoder enc(1 << 20);
    const auto t0 = std::chrono::steady_clock::now();
    msrm::collect_roots(f.ctx->space(), enc, f.roots, threads);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    best = (r == 0) ? s : std::min(best, s);
    if (out != nullptr && r == repeats - 1) *out = enc.take();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_bench_args(argc, argv, "BENCH_migration.json");
  // Repeats give the trace.* histograms real percentile spread; smoke
  // mode runs each program once on a small instance.
  const int repeats = args.smoke ? 1 : 3;
  const int linpack_n = args.smoke ? 200 : 1000;
  const int bitonic_log2n = args.smoke ? 12 : 17;

  bench::BenchReport report("table1_migration", args.smoke);

  std::printf("Table 1: migration time split (seconds), 100 Mb/s Ethernet model\n");
  std::printf("%-22s %10s %10s %10s %12s %10s\n", "Program", "Collect", "Tx", "Restore",
              "Bytes", "Blocks");

  double linpack_collect = 0;
  double linpack_restore = 0;
  {
    bench::Measurement m;
    for (int r = 0; r < repeats; ++r) {
      apps::LinpackResult result;
      m = bench::measure_migration(
          apps::linpack_register_types,
          [&result, linpack_n](mig::MigContext& ctx) {
            apps::linpack_program(ctx, linpack_n, 1, &result);
          },
          /*at_poll=*/1);
    }
    std::printf("%-22s %10.4f %10.4f %10.4f %12llu %10llu\n", "Linpack 1000x1000",
                m.collect_s, m.tx_100mbps, m.restore_s,
                static_cast<unsigned long long>(m.bytes),
                static_cast<unsigned long long>(
                    m.collect.counter("msrm.collect.blocks_saved")));
    std::printf("%-22s %10.3f %10.3f %10.3f   (Ultra 5, measured)\n",
                "  paper reference", 0.846, 0.797, 0.712);
    linpack_collect = m.collect_s;
    linpack_restore = m.restore_s;
    report.add("linpack.collect_seconds", m.collect_s, "seconds");
    report.add("linpack.tx_seconds_100mbps", m.tx_100mbps, "seconds");
    report.add("linpack.restore_seconds", m.restore_s, "seconds");
    report.add("linpack.stream_bytes", static_cast<double>(m.bytes), "bytes");
  }

  {
    bench::Measurement m;
    for (int r = 0; r < repeats; ++r) {
      apps::BitonicResult result;
      m = bench::measure_migration(
          apps::bitonic_register_types,
          [&result, bitonic_log2n](mig::MigContext& ctx) {
            apps::bitonic_program(ctx, bitonic_log2n, 9, &result);
          },
          /*at_poll=*/1);
    }
    std::printf("%-22s %10.4f %10.4f %10.4f %12llu %10llu\n", "bitonic (131072)",
                m.collect_s, m.tx_100mbps, m.restore_s,
                static_cast<unsigned long long>(m.bytes),
                static_cast<unsigned long long>(
                    m.collect.counter("msrm.collect.blocks_saved")));
    std::printf("%-22s %10.3f %10.3f %10.3f   (Ultra 5, measured)\n",
                "  paper reference", 0.446, 0.269, 0.501);
    std::printf("\nshape checks (paper's Table 1 orderings):\n");
    std::printf("  linpack Collect > Restore (as in .846 > .712): %s (%.4f vs %.4f)\n",
                linpack_collect > linpack_restore ? "yes" : "NO", linpack_collect,
                linpack_restore);
    std::printf("  bitonic Restore > Collect (allocation-heavy restore, as in .501 > .446): "
                "%s (%.4f vs %.4f)\n",
                m.restore_s > m.collect_s ? "yes" : "NO", m.restore_s, m.collect_s);
    report.add("bitonic.collect_seconds", m.collect_s, "seconds");
    report.add("bitonic.tx_seconds_100mbps", m.tx_100mbps, "seconds");
    report.add("bitonic.restore_seconds", m.restore_s, "seconds");
    report.add("bitonic.stream_bytes", static_cast<double>(m.bytes), "bytes");
  }

  // --- serial vs pipelined transfer, throttled 100 Mb/s link --------------
  // The same large-heap linpack state moved end-to-end both ways over each
  // duplex transport; the pipelined path overlaps Collect / Tx / Restore
  // so its wall time must come in at or under the serial one.
  {
    const int n = args.smoke ? 200 : 800;
    std::printf("\nserial vs pipelined transfer (linpack %dx%d, throttled 100 Mb/s):\n", n, n);
    std::printf("%-10s %12s %12s %9s %9s\n", "Transport", "Serial s", "Pipelined s",
                "Speedup", "Overlap");
    const struct {
      mig::Transport transport;
      const char* name;
    } kTransports[] = {{mig::Transport::Memory, "mem"}, {mig::Transport::Socket, "socket"}};
    for (const auto& t : kTransports) {
      const TransferRun serial = run_transfer(n, t.transport, /*pipeline=*/false);
      const TransferRun piped = run_transfer(n, t.transport, /*pipeline=*/true);
      const double speedup =
          piped.wall_seconds > 0 ? serial.wall_seconds / piped.wall_seconds : 0;
      std::printf("%-10s %12.4f %12.4f %8.2fx %8.1f%%\n", t.name, serial.wall_seconds,
                  piped.wall_seconds, speedup, piped.overlap_ratio * 100);
      const std::string prefix = std::string("pipeline.") + t.name;
      report.add(prefix + ".serial_wall_seconds", serial.wall_seconds, "seconds");
      report.add(prefix + ".pipelined_wall_seconds", piped.wall_seconds, "seconds");
      report.add(prefix + ".speedup", speedup, "ratio");
      report.add(prefix + ".overlap_ratio", piped.overlap_ratio, "ratio");
    }
  }

  // --- serial vs parallel collection, flat index vs seed config -----------
  // An 8-tree forest collected three ways: the seed path (ordered-map
  // index, one thread), the flat interval index serial, and the flat
  // index with four collection workers. The flat serial and parallel
  // streams must be bit-identical — parallelism is a pure latency
  // optimization, never a wire-format change.
  {
    const unsigned kTrees = 8;
    const unsigned kThreads = 4;
    const std::uint32_t per_tree = args.smoke ? 1500 : 16000;
    auto seed_forest = build_forest(msr::SearchStrategy::OrderedMap, kTrees, per_tree);
    auto flat_forest = build_forest(msr::SearchStrategy::FlatArray, kTrees, per_tree);

    const double baseline_s = time_collect(*seed_forest, 1, repeats);
    Bytes flat_serial_bytes;
    const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
    const double flat_serial_s = time_collect(*flat_forest, 1, repeats, &flat_serial_bytes);
    const obs::MetricsSnapshot delta =
        obs::Registry::process().snapshot().delta_since(before);
    Bytes flat_par_bytes;
    const double flat_par_s = time_collect(*flat_forest, kThreads, repeats, &flat_par_bytes);

    const bool identical = flat_serial_bytes == flat_par_bytes;
    const double thread_speedup = flat_par_s > 0 ? flat_serial_s / flat_par_s : 0;
    const double total_speedup = flat_par_s > 0 ? baseline_s / flat_par_s : 0;
    const double searches = static_cast<double>(delta.counter("msr.msrlt.searches"));
    const double steps = static_cast<double>(delta.counter("msr.msrlt.search_steps"));

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("\nparallel collection (%u trees x %u nodes, %u threads, %u hw threads):\n",
                kTrees, per_tree, kThreads, hw);
    std::printf("  seed (map, serial)   %.4fs\n", baseline_s);
    std::printf("  flat index, serial   %.4fs\n", flat_serial_s);
    std::printf("  flat index, %u thr    %.4fs  (%.2fx threads, %.2fx total)\n", kThreads,
                flat_par_s, thread_speedup, total_speedup);
    if (hw < kThreads) {
      std::printf("  (only %u hardware thread%s — the workers time-slice, so the parallel\n"
                  "   path pays its second traversal with no concurrency to buy it back;\n"
                  "   speedup needs >= %u cores)\n",
                  hw, hw == 1 ? "" : "s", kThreads);
    }
    std::printf("  streams bit-identical: %s\n", identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr, "table1_migration: parallel stream diverged from serial\n");
      return 1;
    }

    report.add("parcollect.baseline_seconds", baseline_s, "seconds");
    report.add("parcollect.flat_serial_seconds", flat_serial_s, "seconds");
    report.add("parcollect.flat_par_seconds", flat_par_s, "seconds");
    report.add("parcollect.thread_speedup", thread_speedup, "ratio");
    report.add("parcollect.total_speedup", total_speedup, "ratio");
    report.add("parcollect.bit_identical", identical ? 1 : 0, "bool");
    report.add("parcollect.hardware_threads", hw, "count");
    report.add_ratio("msrlt.search_steps_per_search", steps, searches, "steps");
  }

  // --- content-addressed dedup: the second migration is (almost) free ----
  // The same linpack state moved three times: plain (no cache) as the
  // bit-identical baseline, then dedup'd against a cold cache, then
  // dedup'd again with the cache warm. The identical rerun must be
  // answered almost entirely from the destination's chunk store — the
  // perf_guard fixture gates the second run at < 5% of the stream's
  // bytes — and all three runs must agree on the end-to-end digest.
  {
    const int n = args.smoke ? 200 : 800;
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() /
         ("hpm_bench_dedup_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(cache_dir);

    const DedupRun plain = run_dedup(n, "");
    const DedupRun cold = run_dedup(n, cache_dir);
    const DedupRun warm = run_dedup(n, cache_dir);
    std::filesystem::remove_all(cache_dir);

    const bool identical = plain.migrated && cold.migrated && warm.migrated &&
                           plain.digest == cold.digest && plain.digest == warm.digest;
    const double ratio = warm.stream_bytes > 0
                             ? static_cast<double>(warm.wire_bytes) /
                                   static_cast<double>(warm.stream_bytes)
                             : 1.0;

    std::printf("\ndedup'd transfer (linpack %dx%d, content-addressed chunk cache):\n", n, n);
    std::printf("  first run   %llu stream bytes, %llu on the wire (%llu/%llu chunks missed)\n",
                static_cast<unsigned long long>(cold.stream_bytes),
                static_cast<unsigned long long>(cold.wire_bytes),
                static_cast<unsigned long long>(cold.miss_chunks),
                static_cast<unsigned long long>(cold.manifest_chunks));
    std::printf("  second run  %llu stream bytes, %llu on the wire — %.2f%% (%llu/%llu hits)\n",
                static_cast<unsigned long long>(warm.stream_bytes),
                static_cast<unsigned long long>(warm.wire_bytes), ratio * 100,
                static_cast<unsigned long long>(warm.hit_chunks),
                static_cast<unsigned long long>(warm.manifest_chunks));
    std::printf("  restored streams bit-identical to plain: %s\n", identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr, "table1_migration: dedup'd stream diverged from plain migration\n");
      return 1;
    }
    if (ratio >= 0.05) {
      std::fprintf(stderr,
                   "table1_migration: identical rerun moved %.2f%% of the stream (>= 5%%)\n",
                   ratio * 100);
      return 1;
    }

    bench::BenchReport dedup_report("dedup", args.smoke);
    for (bench::BenchReport* r : {&report, &dedup_report}) {
      r->add("dedup.first_run.stream_bytes", static_cast<double>(cold.stream_bytes), "bytes");
      r->add("dedup.first_run.wire_bytes", static_cast<double>(cold.wire_bytes), "bytes");
      r->add("dedup.second_run.wire_bytes", static_cast<double>(warm.wire_bytes), "bytes");
      r->add("dedup.second_run.bytes_ratio", ratio, "ratio");
      r->add("dedup.second_run.hit_chunks", static_cast<double>(warm.hit_chunks), "count");
      r->add("dedup.second_run.manifest_chunks", static_cast<double>(warm.manifest_chunks),
             "count");
      r->add("dedup.bit_identical", identical ? 1 : 0, "bool");
    }
    // The focused report lands beside the main JSON so the bench-smoke
    // fixture can schema-check BENCH_dedup.json on its own.
    if (!args.json_path.empty()) {
      const std::string dedup_path =
          std::filesystem::path(args.json_path).replace_filename("BENCH_dedup.json").string();
      if (!dedup_report.write(dedup_path)) return 1;
    }
  }

  // --- destination failover: a warm standby re-receives (almost) nothing --
  // The same linpack state, but the primary destination is killed
  // mid-stream and the migration fails over to a standby whose chunk
  // store was warmed by an earlier run of the identical state. The replay
  // negotiates the manifest against that store, so the standby should
  // answer nearly every chunk locally: perf_guard gates
  // `failover.warm_standby.bytes_ratio` at < 5% of the stream, the same
  // ceiling as the dedup rerun.
  {
    const int n = args.smoke ? 200 : 800;
    const std::string standby_dir =
        (std::filesystem::temp_directory_path() /
         ("hpm_bench_failover_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(standby_dir);

    // Warm the standby's store with one clean dedup'd run of the state.
    const DedupRun warm_up = run_dedup(n, standby_dir);

    apps::LinpackResult result;
    mig::RunOptions options;
    options.register_types = apps::linpack_register_types;
    options.program = [&result, n](mig::MigContext& ctx) {
      apps::linpack_program(ctx, n, 1, &result);
    };
    options.migrate_at_poll = 1;
    options.transport = mig::Transport::Memory;
    options.pipeline = true;
    options.stop_after_restore = true;
    options.max_retries = 0;
    // Per-chunk ack cadence (chunk size stays the store's 64 KiB so the
    // warm-up's addresses match) — "after 2 dest frames" (its Hello + the
    // first StateAck) is then provably mid-stream.
    options.ack_every_chunks = 1;
    options.dest_fault_plan = net::FaultPlan::kill_after(2);
    options.failover.standbys = {{.name = "warm-standby", .chunk_cache_dir = standby_dir}};
    options.failover.dial_attempts = 2;
    options.failover.dial_backoff_seconds = 0.001;
    const mig::MigrationReport fo = mig::run_migration(options);
    std::filesystem::remove_all(standby_dir);

    const bool identical =
        warm_up.migrated && fo.migrated && fo.failovers == 1 &&
        fo.stream_digest == warm_up.digest;
    const double ratio = fo.stream_bytes > 0
                             ? static_cast<double>(fo.dedup_wire_bytes) /
                                   static_cast<double>(fo.stream_bytes)
                             : 1.0;

    std::printf("\ndestination failover (linpack %dx%d, primary killed mid-stream):\n", n, n);
    std::printf("  replay to warm standby  %llu stream bytes, %llu on the wire — %.2f%%\n",
                static_cast<unsigned long long>(fo.stream_bytes),
                static_cast<unsigned long long>(fo.dedup_wire_bytes), ratio * 100);
    std::printf("  downtime %.4fs, restored stream identical to warm-up: %s\n",
                fo.failover_downtime_seconds, identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr, "table1_migration: failed-over restore diverged (or no failover)\n");
      return 1;
    }
    if (ratio >= 0.05) {
      std::fprintf(stderr,
                   "table1_migration: warm standby re-received %.2f%% of the stream (>= 5%%)\n",
                   ratio * 100);
      return 1;
    }
    report.add("failover.warm_standby.bytes_ratio", ratio, "ratio");
    report.add("failover.warm_standby.wire_bytes",
               static_cast<double>(fo.dedup_wire_bytes), "bytes");
    report.add("failover.downtime_seconds", fo.failover_downtime_seconds, "seconds");
    report.add("failover.bit_identical", identical ? 1 : 0, "bool");
  }

  // Per-phase latency percentiles over all measured migrations, straight
  // from the span-fed registry histograms.
  report.add_percentiles("trace.mig.collect");
  report.add_percentiles("trace.mig.restore");
  return report.write(args.json_path) ? 0 : 1;
}
