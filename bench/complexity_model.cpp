// Regenerates the §4.2 complexity analysis as two isolating sweeps:
//
//   Collect = MSRLT_search O(n log n) + Encode-and-copy O(sum Di)
//   Restore = MSRLT_update O(n)       + Decode-and-copy O(sum Di)
//
// Sweep A holds bytes-per-block constant and scales the BLOCK COUNT n:
// collection time per block should grow ~log n (search term) while
// restoration time per block stays flat (update term).
//
// Sweep B holds the block count constant and scales the BYTES: both
// times should be linear in sum Di with a constant collect-restore gap —
// the linpack regime of Figure 2(a).
#include <cstdio>
#include <vector>

#include "apps/workload.hpp"
#include "emit.hpp"
#include "support.hpp"

using namespace hpm;

namespace {

void sweep_block_count(bench::BenchReport& report, bool smoke) {
  std::printf("Sweep A: block count n scales, block size fixed (~48 B/node)\n");
  std::printf("%8s %12s %12s %16s %16s %14s\n", "n", "collect_s", "restore_s",
              "collect_ns/blk", "restore_ns/blk", "steps/search");
  const std::vector<std::uint32_t> counts =
      smoke ? std::vector<std::uint32_t>{2000u}
            : std::vector<std::uint32_t>{2000u, 8000u, 32000u, 128000u};
  for (std::uint32_t n : counts) {
    auto program = [n](mig::MigContext& ctx) {
      // Build the graph, then enter a one-poll frame so the harness can
      // trigger at a well-defined point with everything live.
      apps::RandNode** root = &ctx.global<apps::RandNode*>("root");
      apps::GraphShape shape;
      shape.nodes = n;
      shape.edge_density = 0.8;
      shape.share_bias = 0.5;
      HPM_FUNCTION(ctx);
      HPM_BODY(ctx);
      {
        auto nodes = apps::build_random_graph(ctx, 42, shape);
        *root = nodes[0];
      }
      HPM_POLL(ctx, 1);
      HPM_BODY_END(ctx);
    };
    const bench::Measurement m =
        bench::measure_migration(apps::workload_register_types, program, 1);
    const double blocks =
        static_cast<double>(m.collect.counter("msrm.collect.blocks_saved"));
    std::printf("%8u %12.5f %12.5f %16.1f %16.1f %14.2f\n", n, m.collect_s, m.restore_s,
                m.collect_s / blocks * 1e9, m.restore_s / blocks * 1e9,
                static_cast<double>(m.collect.counter("msr.msrlt.search_steps")) /
                    static_cast<double>(m.collect.counter("msr.msrlt.searches")));
    const std::string prefix = "sweepA.n" + std::to_string(n) + ".";
    report.add(prefix + "collect_seconds", m.collect_s, "seconds");
    report.add(prefix + "restore_seconds", m.restore_s, "seconds");
  }
}

void sweep_block_size(bench::BenchReport& report, bool smoke) {
  std::printf("\nSweep B: block count fixed (4 blocks), bytes scale\n");
  std::printf("%12s %12s %12s %14s %14s\n", "bytes", "collect_s", "restore_s",
              "collect_MB/s", "restore_MB/s");
  const std::vector<std::uint32_t> sizes =
      smoke ? std::vector<std::uint32_t>{256u}
            : std::vector<std::uint32_t>{256u, 1024u, 4096u, 16384u};
  for (std::uint32_t kb : sizes) {
    const std::uint32_t elems = kb * 1024 / 8 / 4;
    auto program = [elems](mig::MigContext& ctx) {
      double** blocks = &ctx.global<double*>("b0");
      double** b1 = &ctx.global<double*>("b1");
      double** b2 = &ctx.global<double*>("b2");
      double** b3 = &ctx.global<double*>("b3");
      HPM_FUNCTION(ctx);
      HPM_BODY(ctx);
      *blocks = ctx.heap_alloc<double>(elems, "d0");
      *b1 = ctx.heap_alloc<double>(elems, "d1");
      *b2 = ctx.heap_alloc<double>(elems, "d2");
      *b3 = ctx.heap_alloc<double>(elems, "d3");
      for (std::uint32_t i = 0; i < elems; ++i) {
        (*blocks)[i] = i * 0.5;
        (*b1)[i] = i * 0.25;
        (*b2)[i] = i * 0.125;
        (*b3)[i] = -static_cast<double>(i);
      }
      HPM_POLL(ctx, 1);
      HPM_BODY_END(ctx);
    };
    const bench::Measurement m =
        bench::measure_migration(apps::workload_register_types, program, 1);
    const double mb = static_cast<double>(m.bytes) / 1e6;
    std::printf("%12llu %12.5f %12.5f %14.1f %14.1f\n",
                static_cast<unsigned long long>(m.bytes), m.collect_s, m.restore_s,
                mb / m.collect_s, mb / m.restore_s);
    const std::string prefix = "sweepB.kb" + std::to_string(kb) + ".";
    report.add(prefix + "collect_mb_per_s", mb / m.collect_s, "MB/second");
    report.add(prefix + "restore_mb_per_s", mb / m.restore_s, "MB/second");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchReport report("complexity_model", args.smoke);
  std::printf("Section 4.2 complexity-model sweeps\n\n");
  sweep_block_count(report, args.smoke);
  sweep_block_size(report, args.smoke);
  std::printf("\nexpected shapes: Sweep A steps/search grows exactly as log2(n) — the\n"
              "paper's O(n log n) collection search term — while restoration performs\n"
              "zero address searches (its per-block cost carries only allocator/map\n"
              "constants); Sweep B both rates flat (linear in bytes), constant gap.\n");
  return report.write_if_requested(args) ? 0 : 1;
}
