// Regenerates the §4.3 memory-allocation overhead experiment: "the
// overhead could be high if many small memory blocks are repeatedly
// allocated, causing a large MSRLT."
//
// Compares plain malloc/free against the migratable heap (which registers
// every block in the MSRLT) across a sweep of LIVE block counts — the
// registration cost grows with the table because the address map must
// stay ordered.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>

#include "emit.hpp"
#include "mig/context.hpp"

namespace {

struct Small {
  int v;
  Small* next;
};

void BM_alloc_free_untracked(benchmark::State& state) {
  const std::size_t live = static_cast<std::size_t>(state.range(0));
  std::vector<void*> slots(live, nullptr);
  for (void*& s : slots) s = std::malloc(sizeof(Small));
  std::size_t cursor = 0;
  for (auto _ : state) {
    std::free(slots[cursor]);
    slots[cursor] = std::malloc(sizeof(Small));
    benchmark::DoNotOptimize(slots[cursor]);
    cursor = (cursor + 1) % live;
  }
  for (void* s : slots) std::free(s);
  state.SetLabel("live=" + std::to_string(live));
}
BENCHMARK(BM_alloc_free_untracked)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_alloc_free_tracked(benchmark::State& state) {
  const std::size_t live = static_cast<std::size_t>(state.range(0));
  hpm::ti::TypeTable types;
  {
    hpm::ti::StructBuilder<Small> b(types, "small");
    HPM_TI_FIELD(b, Small, v);
    HPM_TI_FIELD(b, Small, next);
    b.commit();
  }
  hpm::mig::MigContext ctx(types);
  std::vector<Small*> slots(live, nullptr);
  for (Small*& s : slots) s = ctx.heap_alloc<Small>(1, "");
  std::size_t cursor = 0;
  for (auto _ : state) {
    ctx.heap_free(slots[cursor]);
    slots[cursor] = ctx.heap_alloc<Small>(1, "");
    benchmark::DoNotOptimize(slots[cursor]);
    cursor = (cursor + 1) % live;
  }
  for (Small* s : slots) ctx.heap_free(s);
  state.SetLabel("live=" + std::to_string(live) + " (MSRLT-registered)");
}
BENCHMARK(BM_alloc_free_tracked)->Arg(1024)->Arg(8192)->Arg(65536);

/// The paper's remedy: "smart memory allocation policies" — one pooled
/// block of many elements registers a single MSR node.
void BM_alloc_pooled_tracked(benchmark::State& state) {
  const std::uint32_t live = static_cast<std::uint32_t>(state.range(0));
  hpm::ti::TypeTable types;
  {
    hpm::ti::StructBuilder<Small> b(types, "small");
    HPM_TI_FIELD(b, Small, v);
    HPM_TI_FIELD(b, Small, next);
    b.commit();
  }
  hpm::mig::MigContext ctx(types);
  for (auto _ : state) {
    Small* pool = ctx.heap_alloc<Small>(live, "pool");
    benchmark::DoNotOptimize(pool);
    ctx.heap_free(pool);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * live);
  state.SetLabel("one pooled block for " + std::to_string(live) + " elements");
}
BENCHMARK(BM_alloc_pooled_tracked)->Arg(1024)->Arg(8192)->Arg(65536);

/// Timed alloc/free churn at a fixed live-set size, tracked vs not.
double timed_churn(bool tracked, std::size_t live, int rounds) {
  using Clock = std::chrono::steady_clock;
  if (!tracked) {
    std::vector<void*> slots(live, nullptr);
    for (void*& s : slots) s = std::malloc(sizeof(Small));
    const auto t0 = Clock::now();
    std::size_t cursor = 0;
    for (int r = 0; r < rounds; ++r) {
      std::free(slots[cursor]);
      slots[cursor] = std::malloc(sizeof(Small));
      cursor = (cursor + 1) % live;
    }
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    for (void* p : slots) std::free(p);
    return s;
  }
  hpm::ti::TypeTable types;
  {
    hpm::ti::StructBuilder<Small> b(types, "small");
    HPM_TI_FIELD(b, Small, v);
    HPM_TI_FIELD(b, Small, next);
    b.commit();
  }
  hpm::mig::MigContext ctx(types);
  std::vector<Small*> slots(live, nullptr);
  for (Small*& s : slots) s = ctx.heap_alloc<Small>(1, "");
  const auto t0 = Clock::now();
  std::size_t cursor = 0;
  for (int r = 0; r < rounds; ++r) {
    ctx.heap_free(slots[cursor]);
    slots[cursor] = ctx.heap_alloc<Small>(1, "");
    cursor = (cursor + 1) % live;
  }
  const double s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (Small* p : slots) ctx.heap_free(p);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const hpm::bench::BenchArgs args = hpm::bench::parse_bench_args(argc, argv);
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  hpm::bench::BenchReport report("overhead_alloc", args.smoke);
  const std::size_t live = args.smoke ? 1024 : 65536;
  const int rounds = args.smoke ? 10000 : 100000;
  const double plain_s = timed_churn(false, live, rounds);
  const double tracked_s = timed_churn(true, live, rounds);
  report.add("alloc_free_ns.untracked", plain_s / rounds * 1e9, "nanoseconds");
  report.add("alloc_free_ns.tracked", tracked_s / rounds * 1e9, "nanoseconds");
  report.add("tracked_overhead", tracked_s / plain_s, "ratio");
  return report.write_if_requested(args) ? 0 : 1;
}
