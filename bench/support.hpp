// Shared harness for the experiment-regeneration benches: run a
// migratable program up to a trigger, measure Collect, model Tx, then
// restore on a fresh context measuring Restore — the three columns of
// the paper's Table 1.
#pragma once

#include <cstdio>
#include <functional>

#include "mig/annotate.hpp"
#include "mig/context.hpp"
#include "net/simnet.hpp"
#include "obs/metrics.hpp"

namespace hpm::bench {

struct Measurement {
  std::uint64_t bytes = 0;
  double collect_s = 0;
  double restore_s = 0;
  double tx_10mbps = 0;
  double tx_100mbps = 0;
  /// Registry deltas across the two phases; the collect delta also carries
  /// the source MSRLT search/step counters (`msr.msrlt.*`).
  obs::MetricsSnapshot collect;
  obs::MetricsSnapshot restore;
};

/// Collect at poll `at_poll` on a fresh source context, then restore on a
/// fresh destination context (stopping right after restoration). Both
/// contexts register types independently, like two pre-distributed
/// binaries.
inline Measurement measure_migration(const std::function<void(ti::TypeTable&)>& register_types,
                                     const std::function<void(mig::MigContext&)>& program,
                                     std::uint64_t at_poll = 1) {
  Measurement m;
  ti::TypeTable src_types;
  register_types(src_types);
  mig::MigContext src(src_types);
  src.set_migrate_at_poll(at_poll);
  bool migrated = false;
  try {
    program(src);
  } catch (const mig::MigrationExit&) {
    migrated = true;
  }
  if (!migrated) {
    std::fprintf(stderr, "measure_migration: program finished before poll %llu\n",
                 static_cast<unsigned long long>(at_poll));
    return m;
  }
  m.bytes = src.stream().size();
  m.collect_s = src.metrics().collect_seconds;
  m.collect = src.metrics().collect;
  m.tx_10mbps = net::SimulatedLink::ethernet_10mbps().transfer_seconds(m.bytes);
  m.tx_100mbps = net::SimulatedLink::ethernet_100mbps().transfer_seconds(m.bytes);

  ti::TypeTable dst_types;
  register_types(dst_types);
  mig::MigContext dst(dst_types);
  dst.begin_restore(src.stream());
  dst.set_stop_after_restore(true);
  try {
    program(dst);
  } catch (const mig::MigrationExit&) {
    // Expected: restoration finished; the program tail was skipped.
  }
  m.restore_s = dst.metrics().restore_seconds;
  m.restore = dst.metrics().restore;
  return m;
}

}  // namespace hpm::bench
