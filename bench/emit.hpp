// BENCH_*.json emission in the stable `hpm-bench-v1` schema, shared by
// every bench binary, plus the tiny --smoke/--json argument convention
// the bench-smoke ctest target relies on.
//
// Schema (validated by tools/bench_schema_check):
//   {
//     "schema":  "hpm-bench-v1",          // exact string
//     "bench":   "<binary name>",         // non-empty
//     "smoke":   true|false,
//     "results": [                        // >= 1 entry
//       {"name": "...", "value": <number>, "unit": "..."}, ...
//     ],
//     "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//   }
// "metrics" is the process obs::Registry snapshot at write time, so every
// run ships its MSRLT/msrm/xdr/net counters and `trace.*` phase
// histograms (p50/p95/p99) alongside the headline numbers.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace hpm::bench {

struct BenchArgs {
  bool smoke = false;      ///< --smoke: one cheap iteration, then exit 0
  std::string json_path;   ///< --json <path>; empty = no JSON written
};

/// Recognizes --smoke and --json <path>; other arguments are left for the
/// bench (google-benchmark flags pass through untouched). A non-null
/// `default_json_path` makes the bench always write (benches whose JSON
/// feeds downstream consumers — calibration, the perf guard); null keeps
/// JSON opt-in.
inline BenchArgs parse_bench_args(int argc, char** argv,
                                  const char* default_json_path = nullptr) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    }
  }
  if (args.json_path.empty() && default_json_path != nullptr) {
    args.json_path = default_json_path;
  }
  return args;
}

/// Accumulates headline results and writes them (plus the registry
/// snapshot) as one hpm-bench-v1 document.
class BenchReport {
 public:
  BenchReport(std::string bench_name, bool smoke)
      : bench_(std::move(bench_name)), smoke_(smoke) {}

  void add(std::string name, double value, std::string unit) {
    results_.push_back(Row{std::move(name), value, std::move(unit)});
  }

  /// Derived-ratio row (e.g. search steps per search, cache hit rate);
  /// a zero denominator records 0 rather than inf/nan, which would break
  /// the JSON schema.
  void add_ratio(std::string name, double numerator, double denominator,
                 std::string unit = "ratio") {
    add(std::move(name), denominator == 0 ? 0 : numerator / denominator, std::move(unit));
  }

  /// p50/p95/p99 rows for one registry histogram (no-op when the
  /// histogram holds no samples), e.g. per-phase latencies from
  /// "trace.mig.collect".
  void add_percentiles(const std::string& metric_name) {
    const obs::MetricsSnapshot snap = obs::Registry::process().snapshot();
    const obs::HistogramSummary* h = snap.histogram(metric_name);
    if (h == nullptr || h->count == 0) return;
    const char* unit = obs::unit_name(
        obs::Registry::process().histogram(metric_name).unit());
    add(metric_name + ".p50", h->p50, unit);
    add(metric_name + ".p95", h->p95, unit);
    add(metric_name + ".p99", h->p99, unit);
  }

  /// Serialize and write; returns false (with a stderr note) on failure.
  bool write(const std::string& path) const {
    std::string out = "{\"schema\":\"hpm-bench-v1\",\"bench\":\"" +
                      obs::json_escape(bench_) + "\",\"smoke\":";
    out += smoke_ ? "true" : "false";
    out += ",\"results\":[";
    bool first = true;
    for (const Row& row : results_) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"" + obs::json_escape(row.name) +
             "\",\"value\":" + obs::json_number(row.value) + ",\"unit\":\"" +
             obs::json_escape(row.unit) + "\"}";
    }
    out += "],\"metrics\":" + obs::Registry::process().snapshot().to_json() + "}\n";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot open %s\n", path.c_str());
      return false;
    }
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    const bool closed = std::fclose(f) == 0;
    if (!ok || !closed) std::fprintf(stderr, "BenchReport: short write to %s\n", path.c_str());
    return ok && closed;
  }

  /// write() when a path was given; harmless otherwise. Returns false
  /// only on an actual write failure.
  bool write_if_requested(const BenchArgs& args) const {
    return args.json_path.empty() ? true : write(args.json_path);
  }

 private:
  struct Row {
    std::string name;
    double value;
    std::string unit;
  };
  std::string bench_;
  bool smoke_;
  std::vector<Row> results_;
};

}  // namespace hpm::bench
