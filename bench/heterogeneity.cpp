// Regenerates the §4.1 heterogeneity experiment: migrate each test
// program's state DEC 5000/120 (Ultrix, little-endian ILP32) ->
// SPARCstation 20 (Solaris, big-endian ILP32) and verify that
//   (1) the process state moves across platforms,
//   (2) all data structures are consistent before and after,
//   (3) no memory block or pointer is duplicated, and
//   (4) high-order floating-point accuracy is preserved (bit-exact).
//
// Substitution: the two machines are byte-exact ForeignImage memory
// spaces; the native host plays the role of the wire's endpoints.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "apps/workload.hpp"
#include "emit.hpp"
#include "hpm/hpm.hpp"

using namespace hpm;

namespace {

int checks_failed = 0;

void check(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++checks_failed;
}

/// DEC -> SPARC -> host round trip of one collected variable stream. Raw
/// flat bodies carry source-layout bytes, so every Restorer is told which
/// architecture produced its stream (the coordinator reads this from the
/// stream header; these image hops splice streams without headers).
Bytes through_dec_and_sparc(const ti::TypeTable& table, const Bytes& stream,
                            std::uint64_t* image_blocks) {
  memimg::ImageSpace dec(table, xdr::dec5000_ultrix());
  xdr::Decoder d1(stream);
  msrm::Restorer r1(dec, d1, xdr::native_arch());
  r1.set_auto_bind(true);
  const msr::BlockId dec_root = r1.restore_variable();

  xdr::Encoder e2;
  msrm::Collector c2(dec, e2);
  c2.save_variable(dec.msrlt().find_id(dec_root)->base);

  memimg::ImageSpace sparc(table, xdr::sparc20_solaris());
  xdr::Decoder d2(e2.bytes());
  msrm::Restorer r2(sparc, d2, xdr::dec5000_ultrix());
  r2.set_auto_bind(true);
  const msr::BlockId sparc_root = r2.restore_variable();
  *image_blocks = sparc.msrlt().block_count();

  xdr::Encoder e3;
  msrm::Collector c3(sparc, e3);
  c3.save_variable(sparc.msrlt().find_id(sparc_root)->base);
  return e3.take();
}

void pointer_structures_experiment() {
  std::printf("test_pointer-style structures (DEC -> SPARC):\n");
  ti::TypeTable table;
  apps::workload_register_types(table);
  mig::MigContext src(table);
  apps::RandNode*& root = src.global<apps::RandNode*>("root");
  apps::GraphShape shape;
  shape.nodes = 500;
  shape.edge_density = 0.7;
  shape.share_bias = 0.6;
  const auto nodes = apps::build_random_graph(src, 11, shape);
  root = nodes[0];
  const std::uint64_t fp = apps::graph_fingerprint(root);

  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  xdr::Encoder enc;
  msrm::Collector collector(src.space(), enc);
  collector.save_variable(reinterpret_cast<msr::Address>(&root));
  const obs::MetricsSnapshot collected =
      obs::Registry::process().snapshot().delta_since(before);
  std::uint64_t image_blocks = 0;
  const Bytes back = through_dec_and_sparc(table, enc.bytes(), &image_blocks);

  msr::HostSpace host2(table);
  xdr::Decoder dec(back);
  msrm::Restorer restorer(host2, dec, xdr::sparc20_solaris());
  restorer.set_auto_bind(true);
  const msr::BlockId out = restorer.restore_variable();
  auto* root2 = *reinterpret_cast<apps::RandNode**>(host2.msrlt().find_id(out)->base);

  check("structures consistent across DEC->SPARC->host", apps::graph_fingerprint(root2) == fp);
  check("no block duplicated in the images",
        image_blocks == collected.counter("msrm.collect.blocks_saved"));
  check("shared references preserved as references",
        collected.counter("msrm.collect.refs_saved") > 0);
}

void linpack_data_experiment() {
  std::printf("linpack-style floating-point data (DEC -> SPARC):\n");
  ti::TypeTable table;
  msr::HostSpace host(table);
  // Exercise the full dynamic range the solver produces, plus edge cases.
  std::vector<double> a(20000);
  Rng rng(3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = (rng.next_double() - 0.5) * std::pow(10.0, rng.next_int(-300, 300));
  }
  a[0] = 0.0;
  a[1] = -0.0;
  a[2] = std::numeric_limits<double>::denorm_min();
  a[3] = std::numeric_limits<double>::max();
  a[4] = -std::numeric_limits<double>::min();
  double* pa = a.data();
  host.track_raw(msr::Segment::Heap, a.data(), table.primitive(xdr::PrimKind::Double),
                 static_cast<std::uint32_t>(a.size()), "a");
  host.track(msr::Segment::Global, pa, "pa", ti::native_type_id<double*>(table), 1);

  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  xdr::Encoder enc;
  msrm::Collector collector(host, enc);
  collector.save_variable(reinterpret_cast<msr::Address>(&pa));
  const obs::MetricsSnapshot collected =
      obs::Registry::process().snapshot().delta_since(before);
  std::uint64_t image_blocks = 0;
  const Bytes back = through_dec_and_sparc(table, enc.bytes(), &image_blocks);

  msr::HostSpace host2(table);
  xdr::Decoder dec(back);
  msrm::Restorer restorer(host2, dec, xdr::sparc20_solaris());
  restorer.set_auto_bind(true);
  const msr::BlockId out = restorer.restore_variable();
  const double* b = *reinterpret_cast<double* const*>(host2.msrlt().find_id(out)->base);
  bool bit_exact = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      bit_exact = false;
      break;
    }
  }
  check("floating-point data bit-exact after two conversions", bit_exact);
  check("no block duplicated", image_blocks == collected.counter("msrm.collect.blocks_saved"));
}

void narrowing_detection_experiment() {
  std::printf("width-narrowing detection (LP64 host -> ILP32 image):\n");
  ti::TypeTable table;
  msr::HostSpace host(table);
  long fits = 2147483647L;
  host.track(msr::Segment::Global, fits, "fits", table.primitive(xdr::PrimKind::Long), 1);
  xdr::Encoder enc;
  msrm::Collector collector(host, enc);
  collector.save_variable(reinterpret_cast<msr::Address>(&fits));
  memimg::ImageSpace sparc(table, xdr::sparc20_solaris());
  xdr::Decoder dec(enc.bytes());
  msrm::Restorer restorer(sparc, dec, xdr::native_arch());
  restorer.set_auto_bind(true);
  bool ok = true;
  try {
    restorer.restore_variable();
  } catch (const Error&) {
    ok = false;
  }
  check("INT_MAX-valued long narrows losslessly to ILP32", ok);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  std::printf("Section 4.1 heterogeneity experiments (simulated DEC Ultrix / SPARC "
              "Solaris memory images)\n\n");
  pointer_structures_experiment();
  linpack_data_experiment();
  narrowing_detection_experiment();
  std::printf("\n%s\n", checks_failed == 0 ? "ALL HETEROGENEITY CHECKS PASSED"
                                           : "SOME CHECKS FAILED");
  bench::BenchReport report("heterogeneity", args.smoke);
  report.add("checks_failed", checks_failed, "count");
  if (!report.write_if_requested(args)) return 1;
  return checks_failed == 0 ? 0 : 1;
}
