// Regenerates the §4.3 poll-point placement experiment: "the overhead
// could be high if poll-points are placed in a kernel function which
// performs only few operations but is invoked so many times."
//
// Three variants of the same daxpy-based column elimination:
//   plain      — no annotation at all (the untransformed program)
//   outer_poll — one poll per eliminated column (the recommended layout)
//   inner_poll — a poll inside the daxpy inner loop (the paper's warning)
// plus the cost of annotating a tiny function that is called per element
// (frame enter/exit + live-variable registration on every call).
#include <benchmark/benchmark.h>

#include <chrono>

#include "emit.hpp"
#include "mig/annotate.hpp"
#include "mig/context.hpp"

namespace {

using hpm::mig::MigContext;

constexpr int kN = 256;

double plain_elimination(int n) {
  std::vector<double> a(static_cast<std::size_t>(n) * n, 1.0);
  double acc = 0;
  for (int k = 0; k < n - 1; ++k) {
    for (int j = k + 1; j < n; ++j) {
      double* dst = a.data() + static_cast<std::size_t>(j) * n;
      const double* src = a.data() + static_cast<std::size_t>(k) * n;
      for (int i = k + 1; i < n; ++i) dst[i] += 0.001 * src[i];
      acc += dst[k + 1];
    }
  }
  return acc;
}

double outer_poll_elimination(MigContext& ctx, int n) {
  HPM_FUNCTION(ctx);
  int k, j;
  double acc;
  double* base;
  HPM_LOCAL(ctx, k);
  HPM_LOCAL(ctx, j);
  HPM_LOCAL(ctx, acc);
  HPM_LOCAL(ctx, base);
  HPM_BODY(ctx);
  base = ctx.heap_alloc<double>(static_cast<std::uint32_t>(n) * n, "a");
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(n) * n; ++i) base[i] = 1.0;
  acc = 0;
  for (k = 0; k < n - 1; ++k) {
    HPM_POLL(ctx, 1);  // once per column: the paper's recommendation
    for (j = k + 1; j < n; ++j) {
      double* dst = base + static_cast<std::size_t>(j) * n;
      const double* src = base + static_cast<std::size_t>(k) * n;
      for (int i = k + 1; i < n; ++i) dst[i] += 0.001 * src[i];
      acc += dst[k + 1];
    }
  }
  ctx.heap_free(base);
  return acc;
  HPM_BODY_END(ctx);
  return 0;
}

double inner_poll_elimination(MigContext& ctx, int n) {
  HPM_FUNCTION(ctx);
  int k, j, i;
  double acc;
  double* base;
  HPM_LOCAL(ctx, k);
  HPM_LOCAL(ctx, j);
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, acc);
  HPM_LOCAL(ctx, base);
  HPM_BODY(ctx);
  base = ctx.heap_alloc<double>(static_cast<std::uint32_t>(n) * n, "a");
  for (std::uint32_t x = 0; x < static_cast<std::uint32_t>(n) * n; ++x) base[x] = 1.0;
  acc = 0;
  for (k = 0; k < n - 1; ++k) {
    for (j = k + 1; j < n; ++j) {
      for (i = k + 1; i < n; ++i) {
        HPM_POLL(ctx, 1);  // per element: the paper's warned-against layout
        base[static_cast<std::size_t>(j) * n + i] +=
            0.001 * base[static_cast<std::size_t>(k) * n + i];
      }
      acc += base[static_cast<std::size_t>(j) * n + k + 1];
    }
  }
  ctx.heap_free(base);
  return acc;
  HPM_BODY_END(ctx);
  return 0;
}

void BM_elimination_plain(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(plain_elimination(kN));
  }
}
BENCHMARK(BM_elimination_plain)->Unit(benchmark::kMillisecond);

void BM_elimination_outer_poll(benchmark::State& state) {
  hpm::ti::TypeTable types;
  for (auto _ : state) {
    MigContext ctx(types);
    benchmark::DoNotOptimize(outer_poll_elimination(ctx, kN));
  }
}
BENCHMARK(BM_elimination_outer_poll)->Unit(benchmark::kMillisecond);

void BM_elimination_inner_poll(benchmark::State& state) {
  hpm::ti::TypeTable types;
  for (auto _ : state) {
    MigContext ctx(types);
    benchmark::DoNotOptimize(inner_poll_elimination(ctx, kN));
  }
}
BENCHMARK(BM_elimination_inner_poll)->Unit(benchmark::kMillisecond);

/// The cost of annotating a tiny kernel: every call opens a frame and
/// registers/unregisters its live locals in the MSRLT.
double tiny_kernel_annotated(MigContext& ctx, double x) {
  HPM_FUNCTION(ctx);
  double y;
  HPM_LOCAL(ctx, y);
  HPM_LOCAL(ctx, x);
  HPM_BODY(ctx);
  HPM_POLL(ctx, 1);
  y = x * 1.0000001 + 0.5;
  HPM_BODY_END(ctx);
  return y;
}

double tiny_kernel_plain(double x) { return x * 1.0000001 + 0.5; }

void BM_tiny_kernel_plain(benchmark::State& state) {
  double x = 1.0;
  for (auto _ : state) {
    x = tiny_kernel_plain(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_tiny_kernel_plain);

void BM_tiny_kernel_annotated(benchmark::State& state) {
  hpm::ti::TypeTable types;
  MigContext ctx(types);
  double x = 1.0;
  for (auto _ : state) {
    x = tiny_kernel_annotated(ctx, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_tiny_kernel_annotated);

template <class F>
double timed_seconds(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(fn());
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const hpm::bench::BenchArgs args = hpm::bench::parse_bench_args(argc, argv);
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  hpm::bench::BenchReport report("overhead_pollpoints", args.smoke);
  const int n = args.smoke ? 96 : kN;
  hpm::ti::TypeTable types;
  const double plain_s = timed_seconds([&] { return plain_elimination(n); });
  const double outer_s = timed_seconds([&] {
    MigContext ctx(types);
    return outer_poll_elimination(ctx, n);
  });
  const double inner_s = timed_seconds([&] {
    MigContext ctx(types);
    return inner_poll_elimination(ctx, n);
  });
  report.add("elimination_seconds.plain", plain_s, "seconds");
  report.add("elimination_seconds.outer_poll", outer_s, "seconds");
  report.add("elimination_seconds.inner_poll", inner_s, "seconds");
  report.add("outer_poll_overhead", outer_s / plain_s, "ratio");
  report.add("inner_poll_overhead", inner_s / plain_s, "ratio");
  return report.write_if_requested(args) ? 0 : 1;
}
