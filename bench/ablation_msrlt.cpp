// Ablation: the MSRLT's address-search strategies against each other.
//
// The paper's O(n log n) collection term assumes an efficient
// address->block search. This ablation collects the same bitonic-profile
// graph under all three strategies — the reference ordered map, a
// deliberately naive linear scan, and the flat sorted interval array with
// its branchless binary search — showing why the data structure choice is
// load-bearing. All strategies sit behind the set-associative lookup
// cache; per-strategy derived ratios (search_steps_per_search,
// cache_hit_ratio) are reported alongside the raw counters so a
// regression in either is one JSON row, not a division exercise.
#include <benchmark/benchmark.h>

#include <chrono>

#include "apps/workload.hpp"
#include "emit.hpp"
#include "msrm/collect.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace hpm;

void collect_graph(msr::SearchStrategy strategy, std::uint32_t nodes,
                   benchmark::State& state) {
  ti::TypeTable types;
  apps::workload_register_types(types);
  mig::MigContext ctx(types, strategy);
  apps::RandNode*& root = ctx.global<apps::RandNode*>("root");
  apps::GraphShape shape;
  shape.nodes = nodes;
  shape.edge_density = 0.8;
  shape.share_bias = 0.5;
  const auto all = apps::build_random_graph(ctx, 7, shape);
  root = all[0];
  for (auto _ : state) {
    xdr::Encoder enc(1 << 20);
    msrm::Collector collector(ctx.space(), enc);
    collector.save_variable(reinterpret_cast<msr::Address>(&root));
    benchmark::DoNotOptimize(enc.size());
  }
  state.SetLabel(std::to_string(nodes) + " blocks");
}

void BM_collect_ordered_map(benchmark::State& state) {
  collect_graph(msr::SearchStrategy::OrderedMap, static_cast<std::uint32_t>(state.range(0)),
                state);
}
BENCHMARK(BM_collect_ordered_map)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_collect_linear_scan(benchmark::State& state) {
  collect_graph(msr::SearchStrategy::LinearScan, static_cast<std::uint32_t>(state.range(0)),
                state);
}
BENCHMARK(BM_collect_linear_scan)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_collect_flat_array(benchmark::State& state) {
  collect_graph(msr::SearchStrategy::FlatArray, static_cast<std::uint32_t>(state.range(0)),
                state);
}
BENCHMARK(BM_collect_flat_array)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

/// One timed collection pass per strategy for the JSON report.
double timed_collect(msr::SearchStrategy strategy, std::uint32_t nodes) {
  ti::TypeTable types;
  apps::workload_register_types(types);
  mig::MigContext ctx(types, strategy);
  apps::RandNode*& root = ctx.global<apps::RandNode*>("root");
  apps::GraphShape shape;
  shape.nodes = nodes;
  shape.edge_density = 0.8;
  shape.share_bias = 0.5;
  const auto all = apps::build_random_graph(ctx, 7, shape);
  root = all[0];
  const auto t0 = std::chrono::steady_clock::now();
  xdr::Encoder enc(1 << 20);
  msrm::Collector collector(ctx.space(), enc);
  collector.save_variable(reinterpret_cast<msr::Address>(&root));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const hpm::bench::BenchArgs args = hpm::bench::parse_bench_args(argc, argv);
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  hpm::bench::BenchReport report("ablation_msrlt", args.smoke);
  const std::uint32_t nodes = args.smoke ? 1000 : 16000;
  const struct {
    const char* key;
    msr::SearchStrategy strategy;
  } rows[] = {
      {"ordered_map", msr::SearchStrategy::OrderedMap},
      {"linear_scan", msr::SearchStrategy::LinearScan},
      {"flat_array", msr::SearchStrategy::FlatArray},
  };
  for (const auto& row : rows) {
    const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
    const double seconds = timed_collect(row.strategy, nodes);
    const obs::MetricsSnapshot delta =
        obs::Registry::process().snapshot().delta_since(before);
    const double searches = static_cast<double>(delta.counter("msr.msrlt.searches"));
    const double steps = static_cast<double>(delta.counter("msr.msrlt.search_steps"));
    const double hits = static_cast<double>(delta.counter("msr.msrlt.cache_hits"));
    const std::string prefix = std::string(row.key) + ".";
    report.add("collect_seconds." + std::string(row.key), seconds, "seconds");
    report.add(prefix + "searches", searches, "count");
    report.add(prefix + "search_steps", steps, "count");
    report.add(prefix + "cache_hits", hits, "count");
    report.add_ratio(prefix + "search_steps_per_search", steps, searches, "steps");
    report.add_ratio(prefix + "cache_hit_ratio", hits, searches);
    std::printf("%-12s %.4fs  %.2f steps/search, %.1f%% cache hits\n", row.key, seconds,
                searches > 0 ? steps / searches : 0,
                searches > 0 ? hits / searches * 100 : 0);
  }
  return report.write_if_requested(args) ? 0 : 1;
}
