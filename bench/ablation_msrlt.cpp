// Ablation: the MSRLT's ordered address search versus a linear scan.
//
// The paper's O(n log n) collection term assumes an efficient
// address->block search. This ablation collects the same bitonic-profile
// graph with the ordered-map strategy and with a deliberately naive
// linear scan, showing why the data structure choice is load-bearing.
// Both strategies sit behind the one-entry MRU cache; its hit share of
// all searches is reported alongside the timings.
#include <benchmark/benchmark.h>

#include <chrono>

#include "apps/workload.hpp"
#include "emit.hpp"
#include "msrm/collect.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace hpm;

void collect_graph(msr::SearchStrategy strategy, std::uint32_t nodes,
                   benchmark::State& state) {
  ti::TypeTable types;
  apps::workload_register_types(types);
  mig::MigContext ctx(types, strategy);
  apps::RandNode*& root = ctx.global<apps::RandNode*>("root");
  apps::GraphShape shape;
  shape.nodes = nodes;
  shape.edge_density = 0.8;
  shape.share_bias = 0.5;
  const auto all = apps::build_random_graph(ctx, 7, shape);
  root = all[0];
  for (auto _ : state) {
    xdr::Encoder enc(1 << 20);
    msrm::Collector collector(ctx.space(), enc);
    collector.save_variable(reinterpret_cast<msr::Address>(&root));
    benchmark::DoNotOptimize(enc.size());
  }
  state.SetLabel(std::to_string(nodes) + " blocks");
}

void BM_collect_ordered_map(benchmark::State& state) {
  collect_graph(msr::SearchStrategy::OrderedMap, static_cast<std::uint32_t>(state.range(0)),
                state);
}
BENCHMARK(BM_collect_ordered_map)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_collect_linear_scan(benchmark::State& state) {
  collect_graph(msr::SearchStrategy::LinearScan, static_cast<std::uint32_t>(state.range(0)),
                state);
}
BENCHMARK(BM_collect_linear_scan)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

/// One timed collection pass per strategy for the JSON report.
double timed_collect(msr::SearchStrategy strategy, std::uint32_t nodes) {
  ti::TypeTable types;
  apps::workload_register_types(types);
  mig::MigContext ctx(types, strategy);
  apps::RandNode*& root = ctx.global<apps::RandNode*>("root");
  apps::GraphShape shape;
  shape.nodes = nodes;
  shape.edge_density = 0.8;
  shape.share_bias = 0.5;
  const auto all = apps::build_random_graph(ctx, 7, shape);
  root = all[0];
  const auto t0 = std::chrono::steady_clock::now();
  xdr::Encoder enc(1 << 20);
  msrm::Collector collector(ctx.space(), enc);
  collector.save_variable(reinterpret_cast<msr::Address>(&root));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const hpm::bench::BenchArgs args = hpm::bench::parse_bench_args(argc, argv);
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  hpm::bench::BenchReport report("ablation_msrlt", args.smoke);
  const std::uint32_t nodes = args.smoke ? 1000 : 16000;
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  report.add("collect_seconds.ordered_map",
             timed_collect(msr::SearchStrategy::OrderedMap, nodes), "seconds");
  report.add("collect_seconds.linear_scan",
             timed_collect(msr::SearchStrategy::LinearScan, nodes), "seconds");
  const obs::MetricsSnapshot delta =
      obs::Registry::process().snapshot().delta_since(before);
  const double searches = static_cast<double>(delta.counter("msr.msrlt.searches"));
  const double hits = static_cast<double>(delta.counter("msr.msrlt.cache_hits"));
  std::printf("MRU cache: %.0f of %.0f searches short-circuited (%.1f%%)\n", hits, searches,
              searches > 0 ? hits / searches * 100 : 0);
  report.add("mru_cache.hits", hits, "count");
  report.add("mru_cache.hit_ratio", searches > 0 ? hits / searches : 0, "ratio");
  return report.write_if_requested(args) ? 0 : 1;
}
