// Ablation: the MSRLT's ordered address search versus a linear scan.
//
// The paper's O(n log n) collection term assumes an efficient
// address->block search. This ablation collects the same bitonic-profile
// graph with the ordered-map strategy and with a deliberately naive
// linear scan, showing why the data structure choice is load-bearing.
#include <benchmark/benchmark.h>

#include "apps/workload.hpp"
#include "msrm/collect.hpp"

namespace {

using namespace hpm;

void collect_graph(msr::SearchStrategy strategy, std::uint32_t nodes,
                   benchmark::State& state) {
  ti::TypeTable types;
  apps::workload_register_types(types);
  mig::MigContext ctx(types, strategy);
  apps::RandNode*& root = ctx.global<apps::RandNode*>("root");
  apps::GraphShape shape;
  shape.nodes = nodes;
  shape.edge_density = 0.8;
  shape.share_bias = 0.5;
  const auto all = apps::build_random_graph(ctx, 7, shape);
  root = all[0];
  for (auto _ : state) {
    xdr::Encoder enc(1 << 20);
    msrm::Collector collector(ctx.space(), enc);
    collector.save_variable(reinterpret_cast<msr::Address>(&root));
    benchmark::DoNotOptimize(enc.size());
  }
  state.SetLabel(std::to_string(nodes) + " blocks");
}

void BM_collect_ordered_map(benchmark::State& state) {
  collect_graph(msr::SearchStrategy::OrderedMap, static_cast<std::uint32_t>(state.range(0)),
                state);
}
BENCHMARK(BM_collect_ordered_map)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_collect_linear_scan(benchmark::State& state) {
  collect_graph(msr::SearchStrategy::LinearScan, static_cast<std::uint32_t>(state.range(0)),
                state);
}
BENCHMARK(BM_collect_linear_scan)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
